"""Determinism / concurrency lint pass over the codebase.

PR 2's solver portfolio promises byte-level deterministic results:
prefix-stable seeds, virtual-time ("nodes"-clock) budgets, and
epoch-synchronized incumbent sharing.  Those guarantees are one
careless edit away from silently breaking -- an unseeded RNG, a
``time.perf_counter()`` that sneaks wall time into virtual-time logic,
a thread target mutating shared state outside the lock, a ``for x in
some_set`` feeding schedule construction.  None of these crash; they
just make runs irreproducible, which is the one failure mode our
differential tests cannot see.

This module is a small AST analysis that mechanically flags exactly
those bug classes.  Rule catalog (stable IDs, referenced from
docs/architecture.md):

========  ==========================================================
HAX001    unseeded randomness: module-level ``random.*`` /
          legacy ``numpy.random.*`` draws, or ``random.Random()`` /
          ``default_rng()`` / ``RandomState()`` without a seed
HAX002    wall-clock read (``time.time``/``perf_counter``/
          ``monotonic``/``datetime.now``...) inside virtual-time code
HAX003    thread/process target mutates captured shared state outside
          a ``with <lock>`` block (queues are the sanctioned channel)
HAX004    iteration over a ``set`` feeding an order-sensitive
          construct (``for`` loop, list/dict comprehension,
          ``list()``/``tuple()``/``join`` conversion)
HAX005    ``time.sleep`` inside virtual-time code
HAX006    silent exception swallowing (``except: pass`` or
          ``except Exception: pass``)
HAX007    mutable default argument
HAX008    global RNG seeding (``random.seed`` / ``numpy.random.seed``)
          in library code -- breaks composition of seeded components
========  ==========================================================

Sanctioned exceptions are waived **per line, with a reason**::

    t = time.perf_counter()  # haxlint: allow[HAX002] wall budget API

A waiver without a matching finding is itself reported (HAX000), so
stale pragmas cannot accumulate.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: rule id -> one-line description (the lint's public catalog)
RULES: dict[str, str] = {
    "HAX000": "waiver pragma does not match any finding on its line",
    "HAX001": "unseeded random source",
    "HAX002": "wall-clock read in virtual-time code",
    "HAX003": "thread target mutates shared state outside a lock",
    "HAX004": "set iteration feeds an order-sensitive construct",
    "HAX005": "time.sleep in virtual-time code",
    "HAX006": "silent exception swallowing",
    "HAX007": "mutable default argument",
    "HAX008": "global RNG seeding in library code",
}

_PRAGMA_RE = re.compile(
    r"#\s*haxlint:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(.*)"
)

_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "randbytes",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "getrandbits",
}
_NUMPY_LEGACY_DRAWS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "exponential",
    "poisson",
    "bytes",
}
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}
#: mutating container methods HAX003 watches for on captured objects
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "appendleft",
    "extendleft",
    "sort",
    "reverse",
}
#: thread-safe channel methods that are the sanctioned way for
#: portfolio workers to communicate (HAX003 never flags these)
_QUEUE_OPS = {
    "put",
    "put_nowait",
    "get",
    "get_nowait",
    "task_done",
    "join",
    "qsize",
    "empty",
    "full",
    "set",
    "is_set",
    "wait",
}
_LOCK_HINTS = ("lock", "mutex", "cond", "sem")


@dataclass(frozen=True)
class LintConfig:
    """What to check and where virtual-time discipline applies."""

    #: rules to run (default: every catalog rule except the meta rule)
    select: tuple[str, ...] = tuple(
        r for r in RULES if r != "HAX000"
    )
    #: glob patterns (matched against the posix path) delimiting the
    #: virtual-time core where HAX002/HAX005 apply.  Profilers and
    #: experiment drivers legitimately read wall clocks.
    virtual_time_globs: tuple[str, ...] = (
        "*/repro/solver/*",
        "*/repro/core/*",
        "*/repro/soc/*",
        "*/repro/runtime/*",
        "*/repro/serve/*",
        "*/repro/contention/*",
        "*/repro/analysis/*",
        "*/repro/fuzz/*",
    )
    #: report waivers that silence nothing (HAX000)
    flag_stale_waivers: bool = True


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def describe(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} {self.message}"
        )


@dataclass
class _Scope:
    """One function (or the module body) during the walk."""

    locals: set[str] = field(default_factory=set)
    is_thread_target: bool = False
    lock_depth: int = 0
    set_vars: set[str] = field(default_factory=set)


class _Aliases:
    """Canonical dotted names behind local import aliases."""

    def __init__(self) -> None:
        self._map: dict[str, str] = {}

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    self._map[local] = canonical
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports are repo-internal
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._map[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted canonical name of a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._map.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _is_set_expr(node: ast.expr, scope: _Scope) -> bool:
    """Statically set-typed: literal, ``set(...)``, comprehension,
    set-algebra of sets, or a variable assigned one in this scope."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name):
        return node.id in scope.set_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, scope) or _is_set_expr(
            node.right, scope
        )
    if isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        if node.func.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return _is_set_expr(node.func.value, scope)
    return False


def _is_lock_context(node: ast.expr) -> bool:
    name: str | None = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        return _is_lock_context(node.func)
    if name is None:
        return False
    lowered = name.lower()
    return any(h in lowered for h in _LOCK_HINTS)


def _collect_thread_targets(tree: ast.AST) -> set[str]:
    """Function names handed to Thread/Process targets or executors."""
    targets: set[str] = set()

    def remember(node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            targets.add(node.id)
        elif isinstance(node, ast.Attribute):
            targets.add(node.attr)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee: str | None = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        if callee in {"Thread", "Process"}:
            for kw in node.keywords:
                if kw.arg == "target":
                    remember(kw.value)
        elif callee == "submit" and node.args:
            remember(node.args[0])
    return targets


def _function_locals(fn: ast.AST) -> set[str]:
    """Parameter and simple assigned names of one function body
    (nested functions excluded -- their locals are their own)."""
    names: set[str] = set()
    assert isinstance(
        fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
    )
    if not isinstance(fn, ast.Module):
        args = fn.args
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            names.add(a.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)

    class _Locals(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            names.add(node.name)

        def visit_AsyncFunctionDef(
            self, node: ast.AsyncFunctionDef
        ) -> None:
            names.add(node.name)

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass  # separate scope

        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, ast.Store):
                names.add(node.id)

        def visit_Global(self, node: ast.Global) -> None:
            names.difference_update(node.names)

        def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
            names.difference_update(node.names)

    walker = _Locals()
    for stmt in fn.body:
        walker.visit(stmt)
    return names


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        config: LintConfig,
        aliases: _Aliases,
        thread_targets: set[str],
    ) -> None:
        self.path = path
        self.config = config
        self.aliases = aliases
        self.thread_targets = thread_targets
        self.findings: list[LintFinding] = []
        self.scopes: list[_Scope] = []
        self.virtual_time = any(
            fnmatch.fnmatch(path, pat)
            for pat in config.virtual_time_globs
        )

    # -- plumbing ------------------------------------------------------

    def report(
        self, rule: str, node: ast.AST, message: str
    ) -> None:
        if rule not in self.config.select:
            return
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    @property
    def scope(self) -> _Scope:
        return self.scopes[-1]

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_mutable_defaults(node)
        scope = _Scope(
            locals=_function_locals(node),
            is_thread_target=node.name in self.thread_targets,
        )
        self.scopes.append(scope)
        for stmt in node.body:
            self.visit(stmt)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._enter_function(node)

    def visit_With(self, node: ast.With) -> None:
        locked = any(
            _is_lock_context(item.context_expr) for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if locked:
            self.scope.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.scope.lock_depth -= 1

    # -- HAX007: mutable defaults --------------------------------------

    def _check_mutable_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set", "bytearray"}
            )
            if mutable:
                self.report(
                    "HAX007",
                    default,
                    f"mutable default argument in {node.name}(); "
                    "defaults are evaluated once and shared across "
                    "calls",
                )

    # -- assignments: set-typed inference + HAX003 ---------------------

    def _note_set_assignment(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.scope):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scope.set_vars.add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scope.set_vars.discard(target.id)

    def _shared_mutation_base(self, target: ast.expr) -> str | None:
        """Name of the captured object a store mutates, or None if
        the store is local to the current function."""
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            if node is target:
                return None  # plain local rebinding
            if node.id in self.scope.locals:
                return None
            return node.id
        return None

    def _check_thread_store(self, target: ast.expr, node: ast.AST) -> None:
        if not self.scope.is_thread_target or self.scope.lock_depth:
            return
        base = self._shared_mutation_base(target)
        if base is not None:
            self.report(
                "HAX003",
                node,
                f"thread target mutates shared {base!r} outside a "
                "lock; use the result queue or take the epoch lock",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_set_assignment(node)
        for target in node.targets:
            self._check_thread_store(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(
            node.target, ast.Name
        ):
            if _is_set_expr(node.value, self.scope):
                self.scope.set_vars.add(node.target.id)
        self._check_thread_store(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_thread_store(node.target, node)
        self.generic_visit(node)

    # -- HAX004: set iteration -----------------------------------------

    def _check_set_iteration(
        self, iter_node: ast.expr, node: ast.AST, what: str
    ) -> None:
        if _is_set_expr(iter_node, self.scope):
            self.report(
                "HAX004",
                node,
                f"{what} iterates a set in hash order; wrap the set "
                "in sorted() to fix the sequence",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter, node, "for loop")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            self._check_set_iteration(
                gen.iter, node, "list comprehension"
            )
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        for gen in node.generators:
            self._check_set_iteration(
                gen.iter, node, "dict comprehension"
            )
        self.generic_visit(node)

    # -- HAX006: silent excepts ----------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in {"Exception", "BaseException"}
        )
        silent = all(isinstance(s, ast.Pass) for s in node.body)
        if broad and silent:
            self.report(
                "HAX006",
                node,
                "broad except swallows the error silently; handle, "
                "log, or narrow it",
            )
        self.generic_visit(node)

    # -- calls: HAX001/002/005/008 and list(set) -----------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = self.aliases.resolve(node.func)
        if name is not None:
            self._check_call_name(name, node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple"}
            and len(node.args) == 1
        ):
            self._check_set_iteration(
                node.args[0], node, f"{node.func.id}() conversion"
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
        ):
            self._check_set_iteration(
                node.args[0], node, "str.join"
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and node.func.attr not in _QUEUE_OPS
        ):
            self._check_thread_store(node.func, node)
        self.generic_visit(node)

    def _check_call_name(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        if name in _WALL_CLOCKS:
            if self.virtual_time:
                self.report(
                    "HAX002",
                    node,
                    f"{name}() reads the wall clock inside "
                    "virtual-time code; derive time from the "
                    "simulator/\"nodes\" clock instead",
                )
        elif name == "time.sleep":
            if self.virtual_time:
                self.report(
                    "HAX005",
                    node,
                    "time.sleep() blocks the wall clock inside "
                    "virtual-time code",
                )
        elif name in {"random.seed", "numpy.random.seed"}:
            self.report(
                "HAX008",
                node,
                f"{name}() reseeds the process-global RNG; pass an "
                "explicit Random/Generator instance instead",
            )
        elif len(parts) == 2 and parts[0] == "random":
            if parts[1] in _RANDOM_DRAWS:
                self.report(
                    "HAX001",
                    node,
                    f"{name}() draws from the unseeded global RNG; "
                    "use an explicit random.Random(seed)",
                )
            elif parts[1] == "Random" and not (
                node.args or node.keywords
            ):
                self.report(
                    "HAX001",
                    node,
                    "random.Random() without a seed is "
                    "irreproducible",
                )
        elif name.startswith("numpy.random."):
            tail = parts[-1]
            if len(parts) == 3 and tail in _NUMPY_LEGACY_DRAWS:
                self.report(
                    "HAX001",
                    node,
                    f"{name}() draws from numpy's unseeded global "
                    "RNG; use numpy.random.default_rng(seed)",
                )
            elif tail in {"default_rng", "RandomState"} and not (
                node.args or node.keywords
            ):
                self.report(
                    "HAX001",
                    node,
                    f"{name}() without a seed is irreproducible",
                )


def _waivers(source: str) -> dict[int, tuple[set[str], str]]:
    """line -> (waived rule ids, reason) from haxlint pragmas.

    Tokenized, not regexed over raw lines, so pragma look-alikes
    inside string literals (like the example in this module's
    docstring) are not mistaken for waivers.
    """
    out: dict[int, tuple[set[str], str]] = {}
    try:
        tokens = tokenize.generate_tokens(
            io.StringIO(source).readline
        )
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PRAGMA_RE.search(tok.string)
            if m:
                rules = {
                    r.strip()
                    for r in m.group(1).split(",")
                    if r.strip()
                }
                out[tok.start[0]] = (rules, m.group(2).strip())
    except tokenize.TokenError:
        pass  # ast.parse already vouched for the source
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint one module's source text."""
    config = config or LintConfig()
    tree = ast.parse(source, filename=path)
    aliases = _Aliases()
    aliases.collect(tree)
    linter = _Linter(
        path=Path(path).as_posix(),
        config=config,
        aliases=aliases,
        thread_targets=_collect_thread_targets(tree),
    )
    scope = _Scope(locals=_function_locals(tree))
    linter.scopes.append(scope)
    for stmt in tree.body:
        linter.visit(stmt)

    waivers = _waivers(source)
    kept: list[LintFinding] = []
    used: set[int] = set()
    for finding in linter.findings:
        waiver = waivers.get(finding.line)
        if waiver and finding.rule in waiver[0]:
            used.add(finding.line)
            continue
        kept.append(finding)
    if config.flag_stale_waivers:
        for lineno, (rules, _reason) in sorted(waivers.items()):
            if lineno not in used:
                kept.append(
                    LintFinding(
                        rule="HAX000",
                        path=Path(path).as_posix(),
                        line=lineno,
                        col=0,
                        message="waiver for "
                        + ",".join(sorted(rules))
                        + " matches no finding on this line; remove "
                        "the stale pragma",
                    )
                )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
) -> list[LintFinding]:
    """Lint every ``*.py`` file under ``paths`` (dirs recurse)."""
    config = config or LintConfig()
    findings: list[LintFinding] = []
    for file in _iter_python_files(paths):
        findings.extend(
            lint_source(
                file.read_text(encoding="utf-8"),
                path=str(file),
                config=config,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def count_waivers(
    paths: Sequence[str | Path],
) -> list[tuple[str, int, tuple[str, ...], str]]:
    """Every ``haxlint: allow`` pragma under ``paths``, in stable
    ``(path, line, rules, reason)`` order.

    This is the waiver *census* backing the CI waiver budget
    (``tools/run_lint.py --max-waivers N``): the budget pins the
    current count, so the total can only shrink -- a new waiver needs
    a reviewed budget bump, never a silent allow.
    """
    out: list[tuple[str, int, tuple[str, ...], str]] = []
    for file in _iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        for line, (rules, reason) in sorted(_waivers(source).items()):
            out.append(
                (Path(file).as_posix(), line, tuple(sorted(rules)), reason)
            )
    out.sort(key=lambda w: (w[0], w[1]))
    return out
