"""Structured verification diagnostics.

A verifier never answers with a bare boolean: every failed check is a
:class:`Violation` tagged with the paper constraint it corresponds to,
and the :class:`Certificate` collecting them exposes a *minimal
failing-constraint core* -- the violations of the most fundamental
check stage that failed.  A schedule whose assignment shape is already
wrong also fails every timing check downstream; reporting the timing
fallout alongside the structural root cause buries the signal, so
:meth:`Certificate.core` keeps only the first failing stage (the SMT
unsat-core discipline, scaled down to our fixed check pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ViolationKind(str, Enum):
    """What a verifier check found, mapped to the paper's equations."""

    #: Eq. 1-2: every layer group of every stream assigned exactly once
    ASSIGNMENT = "assignment"
    #: Eq. 1: the assigned DSA cannot execute the group at all
    CAPABILITY = "capability"
    #: Eq. 1: segmentation exceeds the transition budget (groups must
    #: form contiguous per-DSA segments)
    CONTIGUITY = "contiguity"
    #: cache key does not describe this schedule (stale entry)
    SIGNATURE = "signature"
    #: a generic problem constraint rejects the assignment
    CONSTRAINT = "constraint"
    #: Eq. 2: claimed standalone latency disagrees with the profile
    LATENCY = "latency"
    #: Eqs. 4-6: items of one stream overlap or run out of order
    ORDERING = "ordering"
    #: Eq. 3: a DSA switch is charged less than its flush+load cost
    TRANSITION = "transition"
    #: Eq. 9: cross-stream same-DSA overlap exceeds the epsilon window
    OVERLAP = "overlap"
    #: Eqs. 7-8: claimed slowdowns are not the contention-interval
    #: fixed point of the claimed timeline
    CONTENTION = "contention"
    #: Eqs. 10-11: claimed objective disagrees with the re-derivation
    OBJECTIVE = "objective"

    def __str__(self) -> str:  # "transition", not "ViolationKind..."
        return self.value


#: check-pipeline order: structural validity before timing before cost.
#: :meth:`Certificate.core` returns the violations of the earliest
#: stage present, because later stages presuppose the earlier ones.
STAGE_ORDER: tuple[ViolationKind, ...] = (
    ViolationKind.ASSIGNMENT,
    ViolationKind.CAPABILITY,
    ViolationKind.CONTIGUITY,
    ViolationKind.SIGNATURE,
    ViolationKind.CONSTRAINT,
    ViolationKind.LATENCY,
    ViolationKind.ORDERING,
    ViolationKind.TRANSITION,
    ViolationKind.OVERLAP,
    ViolationKind.CONTENTION,
    ViolationKind.OBJECTIVE,
)


@dataclass(frozen=True)
class Violation:
    """One failed verifier check."""

    kind: ViolationKind
    #: where in the certificate: ``"dnn0 group 3"``, ``"boundary 2"``...
    where: str
    message: str
    #: independently re-derived value (when numeric comparison failed)
    expected: float | str | None = None
    #: the certificate's claimed value
    actual: float | str | None = None
    #: paper constraint this check enforces, e.g. ``"Eq. 9"``
    equation: str | None = None

    def describe(self) -> str:
        parts = [f"[{self.kind}] {self.where}: {self.message}"]
        if self.expected is not None or self.actual is not None:
            parts.append(f"(expected {self.expected}, got {self.actual})")
        if self.equation is not None:
            parts.append(f"<{self.equation}>")
        return " ".join(parts)


@dataclass(frozen=True)
class Certificate:
    """Outcome of one verification run.

    ``objective`` is the verifier's own re-derivation (``None`` when a
    structural violation prevented re-deriving one at all);
    ``claimed_objective`` is what the certificate under test asserted.
    """

    violations: tuple[Violation, ...]
    #: names of the checks that actually ran, in pipeline order
    checks_run: tuple[str, ...]
    objective: float | None = None
    claimed_objective: float | None = None
    per_dnn_time: tuple[float, ...] | None = None
    makespan: float | None = None
    #: fixed-point iterations the independent re-derivation needed
    fixed_point_iterations: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def core(self) -> tuple[Violation, ...]:
        """Minimal failing-constraint core.

        The violations of the earliest failing stage of the check
        pipeline -- the root cause, with downstream fallout stripped.
        Empty when the certificate verifies clean.
        """
        for stage in STAGE_ORDER:
            hits = tuple(v for v in self.violations if v.kind is stage)
            if hits:
                return hits
        return ()

    def kinds(self) -> frozenset[ViolationKind]:
        return frozenset(v.kind for v in self.violations)

    def describe(self) -> str:
        if self.ok:
            obj = (
                f" objective={self.objective:.6g}"
                if self.objective is not None
                else ""
            )
            return (
                f"certificate OK ({len(self.checks_run)} checks:"
                f" {', '.join(self.checks_run)}){obj}"
            )
        core = self.core()
        lines = [
            f"certificate FAILED: {len(self.violations)} violation(s), "
            f"core = {', '.join(str(v.kind) for v in core)}"
        ]
        # the core is exactly the violations of its (earliest failing)
        # stage, so membership is a kind test -- no object identity
        core_kind = core[0].kind if core else None
        for v in self.violations:
            marker = "*" if v.kind is core_kind else " "
            lines.append(f" {marker} {v.describe()}")
        return "\n".join(lines)


class CertificateError(RuntimeError):
    """A ``verify=True`` debug mode found a violated certificate."""

    def __init__(self, certificate: Certificate, context: str = "") -> None:
        self.certificate = certificate
        prefix = f"{context}: " if context else ""
        super().__init__(prefix + certificate.describe())


def require(certificate: Certificate, context: str = "") -> Certificate:
    """Raise :class:`CertificateError` unless the certificate is clean."""
    if not certificate.ok:
        raise CertificateError(certificate, context)
    return certificate
