"""Per-function effect summaries, computed bottom-up to a fixpoint.

The *effect lattice* is a powerset over five determinism-relevant
effect kinds; a function's summary is the union of the effects its
body performs directly and the summaries of everything it (maybe
transitively, maybe through a callback) calls:

==================  =================================================
``wall-clock``      reads ``time.time``/``perf_counter``/... -- any
                    value derived from it differs across runs
``unseeded-rng``    draws from a process-global or seedless RNG
``env-pid``         reads ``os.environ``/``os.getenv``, a pid, or an
                    ``id()`` -- per-process values that leak host
                    identity into results
``unordered-iter``  iterates a ``set`` into an order-sensitive
                    construct, or enumerates the filesystem without
                    ``sorted()`` -- hash/OS order feeds the result
``fs-read``         reads files or directory listings -- host state
                    feeds the result
==================  =================================================

Direct effects deliberately *ignore* per-line lint waivers: a
``haxlint: allow[HAX002]`` pragma sanctions the local read (the wall
budget API), but the flow analysis still tracks where that value goes
-- the whole point of the interprocedural pass is that a sanctioned
source can still reach a sink it must never feed.  Sanctioned
source->sink pairs live in the checked-in baseline instead.

Each summary keeps, per effect kind, one *witness*: either the direct
site, or the (deterministically chosen: shortest chain, then lowest
qualname) callee whose summary carries the effect.  Witnesses chain,
so a finding can quote the full call path from sink to source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _dotted,
)
from repro.analysis.lint import (
    _NUMPY_LEGACY_DRAWS,
    _RANDOM_DRAWS,
    _WALL_CLOCKS,
)

WALL_CLOCK = "wall-clock"
UNSEEDED_RNG = "unseeded-rng"
ENV_PID = "env-pid"
UNORDERED_ITER = "unordered-iter"
FS_READ = "fs-read"

#: every effect kind, in reporting order
EFFECTS = (WALL_CLOCK, UNORDERED_ITER, UNSEEDED_RNG, ENV_PID, FS_READ)

#: canonical dotted names that read per-process / host identity
_ENV_PID_CALLS = {
    "os.getenv",
    "os.getpid",
    "os.getppid",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: canonical dotted names that enumerate the filesystem (OS order)
_FS_LISTING_CALLS = {
    "os.listdir",
    "os.scandir",
    "os.walk",
    "glob.glob",
    "glob.iglob",
}

#: attribute-method names that enumerate the filesystem on any object
#: (``Path.iterdir`` etc.; heuristic by name, like the lint's mutators)
_FS_LISTING_METHODS = {"iterdir", "glob", "rglob"}

#: attribute-method names that read file contents on any object
_FS_READ_METHODS = {"read_text", "read_bytes"}


@dataclass(frozen=True)
class EffectSite:
    """One direct effect occurrence inside one function."""

    effect: str
    qualname: str
    path: str
    line: int
    detail: str


@dataclass(frozen=True)
class Witness:
    """How one effect reaches one function's summary."""

    site: EffectSite
    #: callee whose summary carries the effect; None when direct
    via: str | None
    #: call-chain length from this function to the direct site
    depth: int


@dataclass
class Summary:
    """Effect kind -> witness, for one function."""

    witnesses: dict[str, Witness] = field(default_factory=dict)

    @property
    def effects(self) -> tuple[str, ...]:
        return tuple(e for e in EFFECTS if e in self.witnesses)


class _SetScope:
    """Set-typed variable inference for one function body (the same
    statically-decidable subset the per-line lint uses)."""

    def __init__(self) -> None:
        self.set_vars: set[str] = set()

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            }:
                return self.is_set(node.func.value)
        return False

    def note_assign(self, node: ast.Assign | ast.AnnAssign) -> None:
        value = node.value
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if value is not None and self.is_set(value):
                self.set_vars.add(target.id)
            else:
                self.set_vars.discard(target.id)


class _EffectCollector(ast.NodeVisitor):
    """Direct effects of one function body (nested defs inlined)."""

    def __init__(self, mod: ModuleInfo, fn: FunctionInfo) -> None:
        self.mod = mod
        self.fn = fn
        self.scope = _SetScope()
        self.sites: list[EffectSite] = []
        #: call nodes appearing directly inside ``sorted(...)`` --
        #: their OS enumeration order is fixed by the wrapper
        self._sorted_args: set[int] = set()

    def _report(self, effect: str, node: ast.AST, detail: str) -> None:
        self.sites.append(
            EffectSite(
                effect=effect,
                qualname=self.fn.qualname,
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.lineno),
                detail=detail,
            )
        )

    # -- assignments feed the set-variable inference -------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.scope.note_assign(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.scope.note_assign(node)
        self.generic_visit(node)

    # -- unordered iteration -------------------------------------------
    def _check_iter(self, iter_node: ast.expr, node: ast.AST, what: str) -> None:
        if self.scope.is_set(iter_node):
            self._report(
                UNORDERED_ITER,
                node,
                f"{what} iterates a set in hash order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node, "for loop")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node, "list comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node, "generator expression")
        self.generic_visit(node)

    # -- attribute reads: os.environ -----------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        if dotted is not None:
            resolved = self.mod.resolve(dotted)
            if resolved == "os.environ" or resolved.startswith(
                "os.environ."
            ):
                self._report(ENV_PID, node, "os.environ read")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "sorted":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self._sorted_args.add(id(arg))
        name = _dotted(node.func)
        resolved = self.mod.resolve(name) if name is not None else None
        if resolved is not None:
            self._check_call(resolved, node)
        if isinstance(node.func, ast.Attribute):
            self._check_method(node.func.attr, node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple"}
            and len(node.args) >= 1
        ):
            self._check_iter(
                node.args[0], node, f"{node.func.id}() conversion"
            )
        self.generic_visit(node)

    def _check_call(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        if name in _WALL_CLOCKS:
            self._report(WALL_CLOCK, node, f"{name}()")
        elif name in _ENV_PID_CALLS:
            self._report(ENV_PID, node, f"{name}()")
        elif name == "id" and len(parts) == 1:
            self._report(ENV_PID, node, "id() is a per-process address")
        elif name in _FS_LISTING_CALLS:
            self._report(FS_READ, node, f"{name}()")
            if id(node) not in self._sorted_args:
                self._report(
                    UNORDERED_ITER,
                    node,
                    f"{name}() enumerates in OS order",
                )
        elif name == "open":
            mode = "r"
            if len(node.args) >= 2 and isinstance(
                node.args[1], ast.Constant
            ):
                mode = str(node.args[1].value)
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            if "r" in mode and not any(c in mode for c in "wax+"):
                self._report(FS_READ, node, f"open(..., {mode!r})")
        elif len(parts) == 2 and parts[0] == "random":
            if parts[1] in _RANDOM_DRAWS:
                self._report(UNSEEDED_RNG, node, f"{name}() (global RNG)")
            elif parts[1] == "Random" and not (node.args or node.keywords):
                self._report(UNSEEDED_RNG, node, "random.Random() seedless")
        elif name.startswith("numpy.random."):
            tail = parts[-1]
            if len(parts) == 3 and tail in _NUMPY_LEGACY_DRAWS:
                self._report(
                    UNSEEDED_RNG, node, f"{name}() (global RNG)"
                )
            elif tail in {"default_rng", "RandomState"} and not (
                node.args or node.keywords
            ):
                self._report(UNSEEDED_RNG, node, f"{name}() seedless")

    def _check_method(self, method: str, node: ast.Call) -> None:
        if method in _FS_READ_METHODS:
            self._report(FS_READ, node, f".{method}()")
        elif method in _FS_LISTING_METHODS:
            self._report(FS_READ, node, f".{method}()")
            if id(node) not in self._sorted_args:
                self._report(
                    UNORDERED_ITER,
                    node,
                    f".{method}() enumerates in OS order",
                )


def direct_effects(
    mod: ModuleInfo, fn: FunctionInfo
) -> tuple[EffectSite, ...]:
    """Every direct effect site in one function body, in source order."""
    collector = _EffectCollector(mod, fn)
    for stmt in fn.node.body:
        collector.visit(stmt)
    return tuple(
        sorted(collector.sites, key=lambda s: (s.line, s.effect, s.detail))
    )


def collect_direct_effects(
    graph: CallGraph,
) -> dict[str, tuple[EffectSite, ...]]:
    """Direct effects for every function in the graph."""
    out: dict[str, tuple[EffectSite, ...]] = {}
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        mod = graph.package.modules[fn.module]
        sites = direct_effects(mod, fn)
        if sites:
            out[qual] = sites
    return out


def summarize(
    graph: CallGraph,
    direct: Mapping[str, tuple[EffectSite, ...]] | None = None,
) -> dict[str, Summary]:
    """Bottom-up effect summaries over the call graph, to fixpoint.

    Deterministic: functions and callees are processed in sorted
    order, and each witness is the minimal one (shortest chain, then
    lowest callee qualname), so two runs over the same tree produce
    identical summaries and identical finding chains.
    """
    if direct is None:
        direct = collect_direct_effects(graph)
    summaries: dict[str, Summary] = {
        qual: Summary() for qual in graph.functions
    }
    # seed with direct sites (depth 0; first site in source order wins)
    for qual, sites in direct.items():
        summary = summaries[qual]
        for site in sites:
            if site.effect not in summary.witnesses:
                summary.witnesses[site.effect] = Witness(
                    site=site, via=None, depth=0
                )
    # propagate until stable
    changed = True
    while changed:
        changed = False
        for qual in sorted(graph.functions):
            summary = summaries[qual]
            for edge in graph.callees(qual):
                callee_summary = summaries.get(edge.callee)
                if callee_summary is None:
                    continue
                for effect, witness in callee_summary.witnesses.items():
                    candidate = Witness(
                        site=witness.site,
                        via=edge.callee,
                        depth=witness.depth + 1,
                    )
                    current = summary.witnesses.get(effect)
                    if current is None or (
                        candidate.depth,
                        candidate.via or "",
                    ) < (current.depth, current.via or ""):
                        summary.witnesses[effect] = candidate
                        changed = True
    return summaries


def chain_of(
    summaries: Mapping[str, Summary], qualname: str, effect: str
) -> tuple[str, ...]:
    """The witness call chain from ``qualname`` down to the function
    containing the direct effect site (inclusive)."""
    chain: list[str] = [qualname]
    current = qualname
    for _ in range(len(summaries) + 1):
        witness = summaries[current].witnesses.get(effect)
        if witness is None or witness.via is None:
            break
        chain.append(witness.via)
        current = witness.via
    return tuple(chain)


def effects_of(
    summaries: Mapping[str, Summary], qualname: str
) -> tuple[str, ...]:
    """The effect kinds a function's summary carries (stable order)."""
    summary = summaries.get(qualname)
    return summary.effects if summary is not None else ()


def iter_effect_sites(
    direct: Mapping[str, tuple[EffectSite, ...]]
) -> Iterable[EffectSite]:
    for qual in sorted(direct):
        yield from direct[qual]
