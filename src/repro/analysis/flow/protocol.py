"""shm-ring / gossip protocol checker (HAX110, HAX111).

A per-function abstract state machine over uses of
:mod:`repro.core.shm`.  The machine is linear over the statement
sequence (flow-insensitive to branches and loops -- ops are ordered
by line number), which is exactly enough to encode the ring's
publication contract:

* the writer publishes bytes *then* the committed offset -- a raw
  body write after the commit publication, with no re-commit, leaks
  garbage bytes into the reader's visible window
  (``write-after-commit``);
* the reader parses *then* publishes the ack offset -- a raw read
  after the ack races the writer, which may already be overwriting
  the acked region (``read-after-ack``);
* each ring direction is single-writer / single-reader -- one scope
  driving both roles on the same object has no crash-consistent
  interleaving (``dual-role``);
* a payload enqueued via ``try_write``/``pack`` must not be mutated
  afterwards -- the inline fallback path shares the object with the
  receiver, so a post-enqueue mutation is visible on one transport
  and not the other (``mutate-after-enqueue``).

HAX111 guards the gossip merge contract: ``SharedEvalState.merge``
must be driven in an order derived from the worker/shard index, never
from a hash-ordered set or completion order (``as_completed``) --
merge order feeds the byte-identity contract across backends.

Op recognition is name-based over the shm API surface
(``try_write`` / ``read_one`` / ``read_available`` / ``_write_at`` /
``_read_at`` / ``_parse_one``) plus the header-publication idiom
``<struct>.pack_into(buf, 0|8, ...)``; ``pack``/``unpack`` count only
on receivers whose :class:`~repro.core.shm.DeltaChannel` type is
locally inferable, so ``struct.pack`` never trips the machine.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _dotted,
)
from repro.analysis.flow.effects import _SetScope

RULE_PROTOCOL = "HAX110"
RULE_MERGE_ORDER = "HAX111"

#: HAX110 sub-rules, in reporting order
SUB_WRITE_AFTER_COMMIT = "write-after-commit"
SUB_READ_AFTER_ACK = "read-after-ack"
SUB_DUAL_ROLE = "dual-role"
SUB_MUTATE_AFTER_ENQUEUE = "mutate-after-enqueue"

_WRITER_METHODS = {"try_write", "_write_at"}
_READER_METHODS = {"read_one", "read_available", "_read_at", "_parse_one"}
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}

#: header offsets published by ``pack_into`` (see core/shm.py layout)
_COMMIT_OFFSET = 0
_ACK_OFFSET = 8


@dataclass(frozen=True)
class ProtocolFinding:
    rule: str
    sub: str
    qualname: str
    path: str
    line: int
    detail: str

    @property
    def key(self) -> tuple[str, str, str, str]:
        return (self.rule, self.sub, self.qualname, self.detail)

    def render(self) -> str:
        return (
            f"{self.rule}[{self.sub}] {self.qualname} "
            f"at {self.path}:{self.line}: {self.detail}"
        )


@dataclass(frozen=True)
class _Op:
    kind: str  # write | commit | read | ack | enqueue | mutate
    obj: str  # object root the op applies to
    line: int
    detail: str


def _root_of(node: ast.expr) -> str | None:
    """Object root for role tracking: ``self._ring.try_write`` tracks
    ``self._ring``; header publication via ``self._shm.buf`` tracks
    ``self``."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    return dotted


class _OpCollector(ast.NodeVisitor):
    """Collect protocol ops and merge sites for one function body."""

    def __init__(self, mod: ModuleInfo, fn: FunctionInfo) -> None:
        self.mod = mod
        self.fn = fn
        self.ops: list[_Op] = []
        self.merge_findings: list[ProtocolFinding] = []
        self.scope = _SetScope()
        #: vars locally typed DeltaChannel (constructor or annotation)
        self.channel_vars: set[str] = set()
        #: loop nesting of provably-unordered iterables
        self._unordered_depth = 0
        for arg in self._all_args(fn.node):
            if arg.annotation is not None:
                ann = _dotted(arg.annotation)
                if ann is not None and self._is_channel_type(ann):
                    self.channel_vars.add(arg.arg)

    @staticmethod
    def _all_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
        a = node.args
        return [*a.posonlyargs, *a.args, *a.kwonlyargs]

    def _is_channel_type(self, name: str) -> bool:
        resolved = self.mod.resolve(name)
        return resolved.rsplit(".", 1)[-1] == "DeltaChannel"

    def _op(self, kind: str, obj: str, node: ast.AST, detail: str) -> None:
        self.ops.append(
            _Op(
                kind=kind,
                obj=obj,
                line=getattr(node, "lineno", self.fn.lineno),
                detail=detail,
            )
        )

    # -- type + payload bookkeeping ------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.scope.note_assign(node)
        value = node.value
        for target in node.targets:
            if not isinstance(target, ast.Name):
                self._note_mutation(target, node)
                continue
            if (
                isinstance(value, ast.Call)
                and (name := _dotted(value.func)) is not None
                and self._is_channel_type(name)
            ):
                self.channel_vars.add(target.id)
            else:
                self.channel_vars.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.scope.note_assign(node)
        if isinstance(node.target, ast.Name):
            ann = _dotted(node.annotation)
            if ann is not None and self._is_channel_type(ann):
                self.channel_vars.add(node.target.id)
        else:
            self._note_mutation(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_mutation(node.target, node)
        self.generic_visit(node)

    def _note_mutation(self, target: ast.expr, node: ast.AST) -> None:
        base: ast.expr | None = None
        if isinstance(target, ast.Subscript):
            base = target.value
            # writes into a ``...buf`` slice are raw ring-body writes
            dotted = _dotted(base)
            if dotted is not None and dotted.endswith(".buf"):
                owner = dotted.rsplit(".", 2)[0] if dotted.count(".") >= 2 else dotted
                self._op("write", owner, node, "raw buffer write")
                return
        elif isinstance(target, ast.Attribute):
            base = target.value
        if base is not None:
            root = _root_of(base)
            if root is not None:
                self._op("mutate", root, node, f"mutates {root}")

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            root = _root_of(func.value)
            if method == "pack_into" and len(node.args) >= 2:
                self._header_publish(node)
            elif root is not None:
                if method in _WRITER_METHODS:
                    self._op("write", root, node, f"{root}.{method}()")
                    if method == "try_write":
                        self._op("enqueue", root, node, f"{root}.{method}()")
                        self._note_payload(node)
                elif method in _READER_METHODS:
                    self._op("read", root, node, f"{root}.{method}()")
                elif method == "pack" and root in self.channel_vars:
                    self._op("enqueue", root, node, f"{root}.pack()")
                    self._note_payload(node)
                elif method == "unpack" and root in self.channel_vars:
                    self._op("read", root, node, f"{root}.unpack()")
                elif method in _MUTATOR_METHODS:
                    self._op("mutate", root, node, f"{root}.{method}()")
                elif method == "merge" and self._unordered_depth > 0:
                    self.merge_findings.append(
                        ProtocolFinding(
                            rule=RULE_MERGE_ORDER,
                            sub="merge-order",
                            qualname=self.fn.qualname,
                            path=self.fn.path,
                            line=node.lineno,
                            detail=(
                                f"{root}.merge() driven by an unordered"
                                " iteration; derive merge order from the"
                                " worker index"
                            ),
                        )
                    )
        self.generic_visit(node)

    def _note_payload(self, node: ast.Call) -> None:
        """Track Name payload args so later mutation can be flagged."""
        for arg in node.args:
            if isinstance(arg, ast.Name):
                self._op(
                    "payload", arg.id, node, f"payload {arg.id!r} enqueued"
                )

    def _header_publish(self, node: ast.Call) -> None:
        buf_arg, off_arg = node.args[0], node.args[1]
        if not (
            isinstance(off_arg, ast.Constant)
            and isinstance(off_arg.value, int)
        ):
            return
        dotted = _dotted(buf_arg)
        if dotted is None or not dotted.endswith(".buf"):
            return
        owner = dotted.rsplit(".", 2)[0] if dotted.count(".") >= 2 else dotted
        if off_arg.value == _COMMIT_OFFSET:
            self._op("commit", owner, node, "commit-offset publish")
        elif off_arg.value == _ACK_OFFSET:
            self._op("ack", owner, node, "ack-offset publish")

    # -- unordered-iteration context for merge sites -------------------
    def _iter_unordered(self, iter_node: ast.expr) -> bool:
        if self.scope.is_set(iter_node):
            return True
        if isinstance(iter_node, ast.Call):
            name = _dotted(iter_node.func)
            if name is not None:
                resolved = self.mod.resolve(name)
                if resolved.rsplit(".", 1)[-1] == "as_completed":
                    return True
        return False

    def visit_For(self, node: ast.For) -> None:
        unordered = self._iter_unordered(node.iter)
        if unordered:
            self._unordered_depth += 1
        self.generic_visit(node)
        if unordered:
            self._unordered_depth -= 1


def _check_function(
    mod: ModuleInfo, fn: FunctionInfo
) -> list[ProtocolFinding]:
    collector = _OpCollector(mod, fn)
    for stmt in fn.node.body:
        collector.visit(stmt)
    findings = list(collector.merge_findings)
    ops = sorted(collector.ops, key=lambda o: o.line)
    by_obj: dict[str, list[_Op]] = {}
    for op in ops:
        by_obj.setdefault(op.obj, []).append(op)

    for obj in sorted(by_obj):
        seq = by_obj[obj]
        # write-after-commit: a raw write preceded by a commit on the
        # same object with no commit after it
        commit_lines = [o.line for o in seq if o.kind == "commit"]
        for op in seq:
            if op.kind != "write" or not commit_lines:
                continue
            if any(c <= op.line for c in commit_lines) and not any(
                c > op.line for c in commit_lines
            ):
                findings.append(
                    ProtocolFinding(
                        rule=RULE_PROTOCOL,
                        sub=SUB_WRITE_AFTER_COMMIT,
                        qualname=fn.qualname,
                        path=fn.path,
                        line=op.line,
                        detail=(
                            f"{op.detail} after commit publication"
                            " without re-commit"
                        ),
                    )
                )
        # read-after-ack: a raw read preceded by an ack on the same
        # object -- the acked region may already be overwritten
        ack_lines = [o.line for o in seq if o.kind == "ack"]
        for op in seq:
            if op.kind == "read" and any(a < op.line for a in ack_lines):
                findings.append(
                    ProtocolFinding(
                        rule=RULE_PROTOCOL,
                        sub=SUB_READ_AFTER_ACK,
                        qualname=fn.qualname,
                        path=fn.path,
                        line=op.line,
                        detail=f"{op.detail} after ack publication",
                    )
                )
        # dual-role: one scope drives both roles on one object
        writer_kinds = {"write", "commit", "enqueue"}
        reader_kinds = {"read", "ack"}
        w = next((o for o in seq if o.kind in writer_kinds), None)
        r = next((o for o in seq if o.kind in reader_kinds), None)
        if w is not None and r is not None:
            first, second = (w, r) if w.line <= r.line else (r, w)
            findings.append(
                ProtocolFinding(
                    rule=RULE_PROTOCOL,
                    sub=SUB_DUAL_ROLE,
                    qualname=fn.qualname,
                    path=fn.path,
                    line=second.line,
                    detail=(
                        f"{obj} used as writer ({w.detail}) and reader"
                        f" ({r.detail}) in one scope"
                    ),
                )
            )

    # mutate-after-enqueue: payload vars mutated after being packed
    payload_ops = [o for o in ops if o.kind == "payload"]
    for pay in payload_ops:
        for op in ops:
            if (
                op.kind == "mutate"
                and op.line > pay.line
                and (op.obj == pay.obj or op.obj.startswith(pay.obj + "."))
            ):
                findings.append(
                    ProtocolFinding(
                        rule=RULE_PROTOCOL,
                        sub=SUB_MUTATE_AFTER_ENQUEUE,
                        qualname=fn.qualname,
                        path=fn.path,
                        line=op.line,
                        detail=f"{pay.detail}, then {op.detail}",
                    )
                )
                break
    return findings


def run_protocol(graph: CallGraph) -> list[ProtocolFinding]:
    """Protocol findings for every function, in stable order."""
    findings: list[ProtocolFinding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        mod = graph.package.modules[fn.module]
        findings.extend(_check_function(mod, fn))
    findings.sort(key=lambda f: (f.rule, f.sub, f.qualname, f.detail))
    return findings
