"""repro.analysis.flow: whole-program determinism-flow analysis.

Three interlocking passes over ``src/repro`` (all AST-based; the
analyzed code is never imported):

1. **call graph + effect summaries** (:mod:`.callgraph`,
   :mod:`.effects`) -- module-level call resolution including
   ``from``-imports, method calls via class-attribute types, and
   function-valued arguments handed to worker entry points; then
   bottom-up fixpoint effect summaries (wall clock, unseeded RNG,
   env/pid/``id()``, unordered iteration, filesystem reads);
2. **determinism taint** (:mod:`.taint`) -- effect sources reaching
   replicated sinks (gossip deltas, shm ring records, solve-store
   entries, incumbent traces, campaign digests), rules
   HAX101..HAX104, each finding carrying the full call chain;
3. **shm/gossip protocol checker** (:mod:`.protocol`) -- per-function
   abstract state machine over the ring API (HAX110) and merge-order
   discipline at ``SharedEvalState.merge`` sites (HAX111).

The CLI entry point is ``haxconn flow``; CI runs it against the
checked-in ``tools/flow_baseline.json`` so new findings fail the
build and the baseline count can only shrink.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.flow.callgraph import (
    CallGraph,
    Package,
    build_call_graph,
    load_package,
)
from repro.analysis.flow.effects import (
    EFFECTS,
    EffectSite,
    Summary,
    chain_of,
    collect_direct_effects,
    summarize,
)
from repro.analysis.flow.protocol import (
    ProtocolFinding,
    run_protocol,
)
from repro.analysis.flow.report import (
    FlowFinding,
    FlowReport,
    apply_baseline,
    combine,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.taint import (
    DEFAULT_SINKS,
    TaintFinding,
    collect_sinks,
    run_taint,
    stale_sinks,
)

__all__ = [
    "CallGraph",
    "DEFAULT_SINKS",
    "EFFECTS",
    "EffectSite",
    "FlowFinding",
    "FlowReport",
    "Package",
    "ProtocolFinding",
    "Summary",
    "TaintFinding",
    "analyze",
    "apply_baseline",
    "build_call_graph",
    "chain_of",
    "collect_direct_effects",
    "collect_sinks",
    "combine",
    "load_baseline",
    "load_package",
    "run_protocol",
    "run_taint",
    "stale_sinks",
    "summarize",
    "write_baseline",
]


def analyze(
    root: str | Path,
    *,
    package: str | None = None,
    baseline_keys: Sequence[str] | None = None,
) -> FlowReport:
    """Run all three passes over a package tree and gate on a baseline.

    ``root`` is the package directory (e.g. ``src/repro``); findings
    are ordered deterministically, so two runs over the same tree
    render byte-identical reports.
    """
    pkg = load_package(root, package=package)
    graph = build_call_graph(pkg)
    summaries = summarize(graph)
    taint = run_taint(graph, summaries)
    protocol = run_protocol(graph)
    findings = combine(taint, protocol)
    return apply_baseline(findings, baseline_keys or [])
