"""Whole-package call-graph construction for the flow analysis.

The per-line lint (:mod:`repro.analysis.lint`) sees one statement at a
time; the flow passes in this package need to know *who calls whom* so
an effect three helpers deep still reaches the sink that consumes it.
This module builds that graph from source, with zero imports of the
analyzed code (analyzing a module must not execute it):

* every ``*.py`` file under a package root is parsed once into a
  :class:`ModuleInfo` (AST, import-alias map, class table, functions);
* calls are resolved best-effort: plain names through the module's
  import map (``from``-imports included, package ``__init__``
  re-exports followed), ``self.method()`` through the class table and
  its package-internal base chain, ``obj.method()`` through
  locally-constructed variable types and ``self.attr`` types recorded
  from ``__init__`` bodies, and ``Class.method()`` directly;
* a function-valued argument (``Thread(target=f)``,
  ``executor.submit(f)``, a ``policy_factory`` handed to the fleet, a
  ``key=`` callback) adds a *higher-order* edge from the caller to the
  referenced function -- workers and callbacks stay reachable even
  though no direct call expression exists;
* nested functions and lambdas are **inlined** into their enclosing
  function: a closure like the portfolio worker's ``on_incumbent`` is
  analyzed as part of the function that defines it, which matches how
  its effects escape.

The graph over-approximates (an edge may exist that never fires at
runtime) and never under-approximates on the constructs above; the
taint pass's baseline file absorbs the sanctioned over-approximations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: pragma marking a function as a taint sink, on its ``def`` line::
#:
#:     def export_delta(self):  # hax: sink gossip payload
SINK_PRAGMA = "# hax: sink"

#: callables whose function-valued arguments are worker entry points
#: (kept for documentation; *any* function-valued argument adds a
#: higher-order edge, so these need no special casing)
WORKER_ENTRY_POINTS = ("Thread", "Process", "submit", "map")


@dataclass
class FunctionInfo:
    """One analyzed function or method (nested defs are inlined)."""

    qualname: str
    module: str
    cls: str | None
    name: str
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: reason text when the def line carries a ``# hax: sink`` pragma
    sink_pragma: str | None = None


@dataclass
class ClassInfo:
    """One class: methods, base chain, and ``self.attr`` types."""

    qualname: str
    module: str
    name: str
    #: base-class dotted names, resolved through the import map
    bases: tuple[str, ...] = ()
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname (from ``__init__`` stores and
    #: annotated class-body assignments)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution context."""

    name: str
    path: str
    tree: ast.Module
    source: str
    is_package: bool
    #: local name -> canonical dotted target (import aliases)
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def resolve(self, dotted: str) -> str:
        """Rewrite the head of a local dotted name via the imports."""
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


@dataclass(frozen=True)
class CallEdge:
    """One resolved call (or callback reference) between functions."""

    caller: str
    callee: str
    line: int
    #: "call" for a direct call expression, "higher-order" for a
    #: function-valued argument handed to another callable
    kind: str = "call"


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _collect_imports(
    tree: ast.Module, module: str, is_package: bool
) -> dict[str, str]:
    out: dict[str, str] = {}
    #: anchor package for relative imports
    anchor = module if is_package else module.rsplit(".", 1)[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                out[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = anchor.split(".")
                if node.level - 1 >= len(parts):
                    continue  # beyond the package root; not ours
                kept = parts[: len(parts) - (node.level - 1)]
                base = ".".join(kept)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
    return out


def _sink_pragma(source_lines: list[str], lineno: int) -> str | None:
    """Reason text when the ``def`` line (1-based) carries the sink
    pragma, else None."""
    if 1 <= lineno <= len(source_lines):
        line = source_lines[lineno - 1]
        at = line.find(SINK_PRAGMA)
        if at >= 0:
            return line[at + len(SINK_PRAGMA) :].strip() or "sink"
    return None


def load_package(root: str | Path, package: str | None = None) -> "Package":
    """Parse every module under ``root`` into a :class:`Package`.

    ``root`` is the directory of the package (e.g. ``src/repro``);
    ``package`` overrides the dotted prefix (default: the directory
    name).  Files that fail to parse are skipped -- the per-line lint
    and the compiler already own syntax errors.
    """
    root = Path(root)
    prefix = package or root.name
    modules: dict[str, ModuleInfo] = {}
    for file in sorted(root.rglob("*.py")):
        rel = file.relative_to(root)
        parts = list(rel.with_suffix("").parts)
        is_package = parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        name = ".".join([prefix, *parts]) if parts else prefix
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue
        info = ModuleInfo(
            name=name,
            path=file.as_posix(),
            tree=tree,
            source=source,
            is_package=is_package,
        )
        info.imports = _collect_imports(tree, name, is_package)
        modules[name] = info
    pkg = Package(modules=modules)
    pkg._index()
    return pkg


def _is_def(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))


class Package:
    """Every module of one package, indexed for name resolution."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: function qualname -> info, across all modules
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> info, across all modules
        self.classes: dict[str, ClassInfo] = {}

    # -- indexing ------------------------------------------------------
    def _index(self) -> None:
        for mod in self.modules.values():
            lines = mod.source.splitlines()
            for node in mod.tree.body:
                if _is_def(node):
                    assert isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    self._add_function(mod, node, lines, cls=None)
                elif isinstance(node, ast.ClassDef):
                    self._add_class(mod, node, lines)
        # second pass: attribute types may name classes indexed later
        # (same module or not), so collect them once every class exists
        for mod in self.modules.values():
            for node in mod.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._collect_class_attr_types(mod, node)

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        lines: list[str],
        cls: str | None,
    ) -> FunctionInfo:
        qual = (
            f"{mod.name}.{cls}.{node.name}"
            if cls
            else f"{mod.name}.{node.name}"
        )
        info = FunctionInfo(
            qualname=qual,
            module=mod.name,
            cls=cls,
            name=node.name,
            path=mod.path,
            lineno=node.lineno,
            node=node,
            sink_pragma=_sink_pragma(lines, node.lineno),
        )
        mod.functions[qual] = info
        self.functions[qual] = info
        return info

    def _add_class(
        self, mod: ModuleInfo, node: ast.ClassDef, lines: list[str]
    ) -> None:
        qual = f"{mod.name}.{node.name}"
        bases: list[str] = []
        for base in node.bases:
            dotted = _dotted(base)
            if dotted is not None:
                bases.append(mod.resolve(dotted))
        cls = ClassInfo(
            qualname=qual,
            module=mod.name,
            name=node.name,
            bases=tuple(bases),
        )
        for item in node.body:
            if _is_def(item):
                assert isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                fn = self._add_function(mod, item, lines, cls=node.name)
                cls.methods[item.name] = fn.qualname
        mod.classes[qual] = cls
        self.classes[qual] = cls

    def class_named(self, mod: ModuleInfo, dotted: str) -> str | None:
        """The package class a (possibly local, possibly imported)
        name denotes in ``mod``, or None."""
        local = f"{mod.name}.{dotted}"
        if local in self.classes:
            return local
        resolved = self.resolve_global(mod.resolve(dotted))
        return resolved if resolved in self.classes else None

    def _collect_class_attr_types(
        self, mod: ModuleInfo, node: ast.ClassDef
    ) -> None:
        """Record class-body annotations and ``self.attr =
        ClassName(...)`` stores in ``__init__`` as attribute types."""
        cls = self.classes[f"{mod.name}.{node.name}"]
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                dotted = _dotted(item.annotation)
                if dotted is not None:
                    resolved = self.class_named(mod, dotted)
                    if resolved is not None:
                        cls.attr_types.setdefault(item.target.id, resolved)
            elif _is_def(item) and item.name == "__init__":
                assert isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                self._collect_init_attr_types(mod, item, cls)

    def _collect_init_attr_types(
        self,
        mod: ModuleInfo,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo,
    ) -> None:
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = _dotted(node.value.func)
            if callee is None:
                continue
            resolved = self.class_named(mod, callee)
            if resolved is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_types.setdefault(target.attr, resolved)

    # -- resolution ----------------------------------------------------
    def resolve_global(self, dotted: str) -> str:
        """Follow package ``__init__`` re-exports to a canonical name.

        ``repro.core.HaXCoNN`` -> ``repro.core.haxconn.HaXCoNN`` when
        ``repro/core/__init__.py`` does ``from repro.core.haxconn
        import HaXCoNN``.  Depth-capped so import cycles terminate.
        """
        for _ in range(8):
            mod_name, attr = self._split_module(dotted)
            if mod_name is None or not attr:
                return dotted
            mod = self.modules[mod_name]
            head, _, rest = attr.partition(".")
            target = mod.imports.get(head)
            if target is None:
                return dotted
            dotted = f"{target}.{rest}" if rest else target
        return dotted

    def _split_module(self, dotted: str) -> tuple[str | None, str]:
        """Longest known module prefix of ``dotted`` + remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, ".".join(parts[cut:])
        return None, dotted

    def function_of(self, dotted: str) -> FunctionInfo | None:
        """The package function a canonical dotted name denotes, if
        any -- following re-exports, and mapping a class name to its
        ``__init__``."""
        resolved = self.resolve_global(dotted)
        fn = self.functions.get(resolved)
        if fn is not None:
            return fn
        cls = self.classes.get(resolved)
        if cls is not None:
            init = cls.methods.get("__init__")
            if init is None:
                init = self._inherited(cls, "__init__")
            return self.functions.get(init) if init else None
        return None

    def method_of(self, cls_qual: str, method: str) -> FunctionInfo | None:
        """Resolve ``method`` on a class or its package-internal
        bases (depth-first over the base chain)."""
        cls = self.classes.get(self.resolve_global(cls_qual))
        if cls is None:
            return None
        qual = cls.methods.get(method) or self._inherited(cls, method)
        return self.functions.get(qual) if qual else None

    def _inherited(
        self, cls: ClassInfo, method: str, depth: int = 0
    ) -> str | None:
        if depth > 8:
            return None
        for base in cls.bases:
            base_cls = self.classes.get(self.resolve_global(base))
            if base_cls is None:
                continue
            if method in base_cls.methods:
                return base_cls.methods[method]
            found = self._inherited(base_cls, method, depth + 1)
            if found is not None:
                return found
        return None


class _CallCollector(ast.NodeVisitor):
    """Resolve the call edges of one function body (nested inlined)."""

    def __init__(
        self, pkg: Package, mod: ModuleInfo, fn: FunctionInfo
    ) -> None:
        self.pkg = pkg
        self.mod = mod
        self.fn = fn
        self.edges: list[CallEdge] = []
        #: local var -> class qualname (from ``v = ClassName(...)``)
        self.var_types: dict[str, str] = {}
        self._collect_var_types(fn.node)

    def _collect_var_types(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                continue
            value = sub.value
            cls: str | None = None
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted is not None:
                    cls = self.pkg.class_named(self.mod, dotted)
            if cls is None and isinstance(sub, ast.AnnAssign):
                dotted = _dotted(sub.annotation)
                if dotted is not None:
                    cls = self.pkg.class_named(self.mod, dotted)
            if cls is None:
                continue
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    self.var_types[target.id] = cls
        # parameter annotations type variables too
        if _is_def(node):
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            args = node.args
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if a.annotation is None:
                    continue
                dotted = _dotted(a.annotation)
                if dotted is None:
                    continue
                resolved = self.pkg.class_named(self.mod, dotted)
                if resolved is not None:
                    self.var_types[a.arg] = resolved

    # -- resolution helpers --------------------------------------------
    def _edge(self, callee: FunctionInfo | None, node: ast.AST, kind: str) -> None:
        if callee is None or callee.qualname == self.fn.qualname:
            return
        self.edges.append(
            CallEdge(
                caller=self.fn.qualname,
                callee=callee.qualname,
                line=getattr(node, "lineno", self.fn.lineno),
                kind=kind,
            )
        )

    def _resolve_callable(self, func: ast.expr) -> FunctionInfo | None:
        """The package function a call expression's target denotes."""
        if isinstance(func, ast.Name):
            # module-level function or class in this module first
            local = f"{self.mod.name}.{func.id}"
            if local in self.pkg.functions:
                return self.pkg.functions[local]
            if local in self.pkg.classes and func.id not in self.mod.imports:
                return self.pkg.function_of(local)
            return self.pkg.function_of(self.mod.resolve(func.id))
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        method = func.attr
        if isinstance(base, ast.Name):
            if base.id == "self" and self.fn.cls is not None:
                return self.pkg.method_of(
                    f"{self.mod.name}.{self.fn.cls}", method
                )
            if base.id in self.var_types:
                return self.pkg.method_of(self.var_types[base.id], method)
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.mod.resolve(dotted)
                fn = self.pkg.function_of(resolved)
                if fn is not None:
                    return fn
            return None
        # self.attr.method() through recorded attribute types
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and self.fn.cls is not None
        ):
            cls = self.pkg.classes.get(
                f"{self.mod.name}.{self.fn.cls}"
            )
            if cls is not None:
                attr_cls = cls.attr_types.get(base.attr)
                if attr_cls is not None:
                    return self.pkg.method_of(attr_cls, method)
        return None

    def _resolve_reference(self, node: ast.expr) -> FunctionInfo | None:
        """A *reference* to a function (not a call): Name or
        ``self.method`` / ``Class.method`` attribute."""
        if isinstance(node, ast.Name):
            local = f"{self.mod.name}.{node.id}"
            if local in self.pkg.functions:
                return self.pkg.functions[local]
            resolved = self.mod.resolve(node.id)
            if resolved != node.id or "." in resolved:
                fn = self.pkg.functions.get(
                    self.pkg.resolve_global(resolved)
                )
                if fn is not None:
                    return fn
            return None
        if isinstance(node, ast.Attribute):
            return self._resolve_callable(node)
        return None

    # -- visitor -------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._edge(self._resolve_callable(node.func), node, "call")
        for arg in list(node.args) + [k.value for k in node.keywords]:
            ref = self._resolve_reference(arg)
            if ref is not None:
                self._edge(ref, node, "higher-order")
        self.generic_visit(node)


@dataclass
class CallGraph:
    """Functions plus resolved edges, ready for the effect fixpoint."""

    package: Package
    edges: dict[str, tuple[CallEdge, ...]]

    @property
    def functions(self) -> dict[str, FunctionInfo]:
        return self.package.functions

    def callees(self, qualname: str) -> tuple[CallEdge, ...]:
        return self.edges.get(qualname, ())

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def iter_edges(self) -> Iterator[CallEdge]:
        for qual in sorted(self.edges):
            yield from self.edges[qual]


def build_call_graph(pkg: Package) -> CallGraph:
    """Resolve every function's call edges (deterministic order)."""
    edges: dict[str, tuple[CallEdge, ...]] = {}
    for qual in sorted(pkg.functions):
        fn = pkg.functions[qual]
        mod = pkg.modules[fn.module]
        collector = _CallCollector(pkg, mod, fn)
        for stmt in fn.node.body:
            collector.visit(stmt)
        # dedupe on (callee, kind), keep first (lowest-line) witness
        seen: set[tuple[str, str]] = set()
        kept: list[CallEdge] = []
        for edge in sorted(
            collector.edges, key=lambda e: (e.callee, e.line)
        ):
            key = (edge.callee, edge.kind)
            if key not in seen:
                seen.add(key)
                kept.append(edge)
        edges[qual] = tuple(kept)
    return CallGraph(package=pkg, edges=edges)
