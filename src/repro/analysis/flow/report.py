"""Flow findings, stable report rendering, and the baseline gate.

The baseline (``tools/flow_baseline.json``) holds *keys*, not lines:
a finding's identity is ``(rule, [sub,] sink-or-scope, source-or-
detail, effect)``, so refactors that move code without changing the
flow neither add nor remove baseline entries.  CI gates on two
properties: no finding outside the baseline (exit 1), and the
checked-in file matching ``--write-baseline`` output byte-for-byte
(a shrink must be committed, so the count only goes down).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.flow.protocol import ProtocolFinding
from repro.analysis.flow.taint import TaintFinding

#: schema tag so a future key change invalidates old baselines loudly
BASELINE_VERSION = 1


@dataclass(frozen=True)
class FlowFinding:
    """Uniform view over taint and protocol findings."""

    rule: str
    key: tuple[str, ...]
    path: str
    line: int
    message: str

    @classmethod
    def from_taint(cls, f: TaintFinding) -> "FlowFinding":
        return cls(
            rule=f.rule,
            key=f.key,
            path=f.path,
            line=f.line,
            message=f.render(),
        )

    @classmethod
    def from_protocol(cls, f: ProtocolFinding) -> "FlowFinding":
        return cls(
            rule=f.rule,
            key=f.key,
            path=f.path,
            line=f.line,
            message=f.render(),
        )

    @property
    def key_str(self) -> str:
        return "|".join(self.key)


@dataclass
class FlowReport:
    """All findings from one run, plus the baseline verdict."""

    findings: tuple[FlowFinding, ...]
    baselined: tuple[FlowFinding, ...] = ()
    #: baseline keys no current finding matches (fixed -> must shrink)
    stale_keys: tuple[str, ...] = ()

    @property
    def new_findings(self) -> tuple[FlowFinding, ...]:
        return self.findings

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines: list[str] = []
        for f in self.findings:
            lines.append(f.message)
        lines.append(
            f"flow: {len(self.findings)} new, "
            f"{len(self.baselined)} baselined, "
            f"{len(self.stale_keys)} stale baseline entries"
        )
        if self.stale_keys:
            for key in self.stale_keys:
                lines.append(f"  stale: {key}")
            lines.append(
                "  (fixed findings: refresh with --write-baseline so"
                " the count shrinks)"
            )
        return "\n".join(lines)


def combine(
    taint: Sequence[TaintFinding],
    protocol: Sequence[ProtocolFinding],
) -> tuple[FlowFinding, ...]:
    """Merge both passes into one deterministically ordered tuple."""
    merged = [FlowFinding.from_taint(f) for f in taint]
    merged.extend(FlowFinding.from_protocol(f) for f in protocol)
    merged.sort(key=lambda f: (f.rule, f.key, f.path, f.line))
    return tuple(merged)


def apply_baseline(
    findings: Iterable[FlowFinding],
    baseline_keys: Iterable[str],
) -> FlowReport:
    keys = set(baseline_keys)
    new: list[FlowFinding] = []
    old: list[FlowFinding] = []
    seen: set[str] = set()
    for f in findings:
        seen.add(f.key_str)
        (old if f.key_str in keys else new).append(f)
    stale = tuple(sorted(keys - seen))
    return FlowReport(
        findings=tuple(new), baselined=tuple(old), stale_keys=stale
    )


def baseline_payload(findings: Iterable[FlowFinding]) -> dict[str, object]:
    """Serializable baseline for the given findings (sorted, unique)."""
    keys = sorted({f.key_str for f in findings})
    return {"version": BASELINE_VERSION, "keys": keys}


def write_baseline(path: str | Path, findings: Iterable[FlowFinding]) -> None:
    payload = baseline_payload(findings)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")


def load_baseline(path: str | Path) -> list[str]:
    """Baseline keys; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return []
    raw = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(raw, Mapping):
        raise ValueError(f"malformed baseline {p}: expected an object")
    version = raw.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {p} has version {version!r}; this checker"
            f" expects {BASELINE_VERSION} (regenerate with"
            " --write-baseline)"
        )
    keys = raw.get("keys")
    if not isinstance(keys, list) or not all(
        isinstance(k, str) for k in keys
    ):
        raise ValueError(f"malformed baseline {p}: 'keys' must be strings")
    return list(keys)
