"""Determinism-taint pass: effect sources reaching replicated sinks.

A *sink* is a function whose result (or side effect) is replicated,
persisted, or compared byte-for-byte across processes and runs:
gossip delta construction, shm ring writes, solve-store records,
portfolio incumbent traces, campaign digests, fleet report text.  If
anything in a sink's transitive call tree reads the wall clock, a
global RNG, the environment / pid / ``id()``, or iterates an
unordered container, the replicated bytes can differ across runs --
exactly the class of bug the repo's dynamic byte-identity tests only
catch when a seed happens to hit it.

Sinks come from two places that the test suite keeps in parity:

* :data:`DEFAULT_SINKS` -- the checked-in registry below, and
* a ``# hax: sink`` pragma on a ``def`` line anywhere in the tree.

The pass is *effect-reachability*, not data-flow: a sink that merely
calls a wall-clock reader is reported even if the value provably
never escapes.  That over-approximation is deliberate -- sanctioned
pairs (e.g. the solver reading its own deadline) live in the
checked-in baseline, where a reviewer sees every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.effects import (
    ENV_PID,
    UNORDERED_ITER,
    UNSEEDED_RNG,
    WALL_CLOCK,
    Summary,
    chain_of,
    summarize,
)

#: effect kind -> HAX rule id for the taint family
TAINT_RULES: dict[str, str] = {
    WALL_CLOCK: "HAX101",
    UNORDERED_ITER: "HAX102",
    UNSEEDED_RNG: "HAX103",
    ENV_PID: "HAX104",
}

#: sink qualname -> the replicated artifact it feeds.  Keep sorted.
DEFAULT_SINKS: dict[str, str] = {
    "repro.core.shm.DeltaChannel.pack": "shm delta-channel payload",
    "repro.core.shm.ShmRing.try_write": "shm ring record",
    "repro.core.solve_store.SolveStore._append": "solve-store record",
    "repro.fuzz.runner.CampaignReport.digest": "campaign digest",
    "repro.fuzz.runner.run_campaign": "campaign digest inputs",
    "repro.serve.fleet.Fleet._append_store": "persisted gossip delta",
    "repro.serve.fleet.Fleet._initial_delta": "gossip broadcast delta",
    "repro.serve.fleet.ShardedFleetReport.describe": "fleet report text",
    "repro.serve.policy.CachedAnytimePolicy.export_delta": (
        "policy gossip delta"
    ),
    "repro.serve.policy.CachedAnytimePolicy.result_for": (
        "cached schedule result"
    ),
    "repro.solver.portfolio.PortfolioSolver.solve": (
        "portfolio incumbent trace"
    ),
}


@dataclass(frozen=True)
class TaintFinding:
    """One effect source reaching one sink, with its witness chain."""

    rule: str
    effect: str
    sink: str
    sink_role: str
    #: function containing the direct effect site (chain tail)
    source: str
    detail: str
    path: str
    line: int
    #: sink -> ... -> source call chain (inclusive both ends)
    chain: tuple[str, ...]

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Line-free identity used for baselining: stable across
        refactors that move code but keep the same flow."""
        return (self.rule, self.sink, self.source, self.effect)

    def render(self) -> str:
        arrow = " -> ".join(self.chain)
        return (
            f"{self.rule} {self.sink} [{self.sink_role}] "
            f"reaches {self.effect}: {self.detail} "
            f"at {self.path}:{self.line} via {arrow}"
        )


def collect_sinks(graph: CallGraph) -> dict[str, str]:
    """Registry sinks plus ``# hax: sink`` pragma sinks, validated.

    A registry entry naming a function that no longer exists is an
    error (stale registry), surfaced via ``unknown`` so the caller
    can fail loudly rather than silently skip the sink.
    """
    sinks: dict[str, str] = {}
    for qual, role in DEFAULT_SINKS.items():
        if qual in graph.functions:
            sinks[qual] = role
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.sink_pragma and qual not in sinks:
            sinks[qual] = "pragma sink"
    return sinks


def stale_sinks(graph: CallGraph) -> tuple[str, ...]:
    """Registry entries that no longer name a live function."""
    return tuple(
        sorted(q for q in DEFAULT_SINKS if q not in graph.functions)
    )


def run_taint(
    graph: CallGraph,
    summaries: dict[str, Summary] | None = None,
    sinks: dict[str, str] | None = None,
) -> list[TaintFinding]:
    """All source->sink findings, in stable (rule, sink, source) order."""
    if summaries is None:
        summaries = summarize(graph)
    if sinks is None:
        sinks = collect_sinks(graph)
    findings: list[TaintFinding] = []
    for sink in sorted(sinks):
        role = sinks[sink]
        summary = summaries.get(sink)
        if summary is None:
            continue
        for effect, rule in TAINT_RULES.items():
            witness = summary.witnesses.get(effect)
            if witness is None:
                continue
            chain = chain_of(summaries, sink, effect)
            findings.append(
                TaintFinding(
                    rule=rule,
                    effect=effect,
                    sink=sink,
                    sink_role=role,
                    source=witness.site.qualname,
                    detail=witness.site.detail,
                    path=witness.site.path,
                    line=witness.site.line,
                    chain=chain,
                )
            )
    findings.sort(key=lambda f: (f.rule, f.sink, f.source, f.detail))
    return findings
