"""Independent schedule-certificate checker (paper Eqs. 1-11).

The solvers in this repository are cross-checked only against each
other; if all of them misread a constraint the same way, every
differential test still passes.  This module is the independent
auditor: given a :class:`~repro.core.formulation.Formulation` (the
problem data -- profiles, repeats, contention model, objective) and a
candidate :class:`~repro.core.schedule.Schedule`, it re-derives the
objective **from first principles** -- per-group standalone latencies
(Eq. 2), flush/load transition charges at every DSA switch (Eq. 3),
and contention slowdowns over the actual overlap windows (Eqs. 4-8,
iterated to a fixed point) -- and checks every structural constraint
(Eq. 1 assignment shape and contiguity, Eq. 9 exclusivity, Eq. 10/11
objective composition).

The re-derivation shares **no timeline code** with
``Formulation.evaluate``: it is a scalar, name-keyed, event-driven
evaluation written against the paper's text, where the production cost
model is a vectorized fixed-point solver.  Agreement between the two
is therefore evidence, not tautology.

Every failed check yields a structured
:class:`~repro.analysis.diagnostics.Violation`; the returned
:class:`~repro.analysis.diagnostics.Certificate` exposes the minimal
failing-constraint core.  ``verify_assignment`` / ``verify_solve``
provide the same service for generic solver
:class:`~repro.solver.problem.Problem` s, which is what the solvers'
``verify=True`` debug mode calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.diagnostics import (
    Certificate,
    Violation,
    ViolationKind,
)
from repro.contention.base import NoContentionModel
from repro.core.formulation import EvaluationResult, Formulation, ItemTiming
from repro.core.schedule import Schedule
from repro.solver.problem import Assignment, Infeasible, Problem

if TYPE_CHECKING:  # avoid import cycles with repro.core.haxconn
    from repro.core.haxconn import HaXCoNN, ScheduleResult
    from repro.core.workload import Workload
    from repro.solver.bnb import SolveResult

#: relative tolerance for objective agreement between the independent
#: re-derivation and a claimed value.  The production cost model stops
#: its damped fixed point at ``Formulation.tolerance`` (1e-4), so two
#: correct evaluators can legitimately disagree by a few parts in 1e4.
DEFAULT_REL_TOL = 2e-3
#: absolute tolerance on claimed per-item slowdowns vs the contention
#: model re-queried over the claimed overlap windows
DEFAULT_SLOWDOWN_TOL = 5e-3
#: absolute slack for timing comparisons (seconds)
_T_EPS = 1e-9


# ---------------------------------------------------------------------------
# independent re-derivation
# ---------------------------------------------------------------------------


@dataclass
class _Item:
    """One (stream, repeat, group) execution in the re-derivation."""

    dnn: int
    rep: int
    group: int
    accel: str
    t0: float
    bw: float
    lead_out: float
    lead_in: float
    prev_accel: str | None
    start: float = 0.0
    end: float = 0.0
    slowdown: float = 1.0


@dataclass(frozen=True)
class Rederivation:
    """The verifier's own evaluation of a schedule."""

    items: tuple[_Item, ...]
    per_dnn_time: tuple[float, ...]
    makespan: float
    objective: float
    energy_j: float | None
    fixed_point_iterations: int
    #: worst slowdown change if the fixed point were iterated once more
    fixed_point_residual: float


def _build_items(
    formulation: Formulation, assignments: Sequence[Sequence[str]]
) -> list[_Item]:
    items: list[_Item] = []
    for n, (profile, assignment) in enumerate(
        zip(formulation.profiles, assignments)
    ):
        for rep in range(formulation.repeats[n]):
            for g, accel in enumerate(assignment):
                gp = profile.groups[g]
                lead_out = lead_in = 0.0
                prev: str | None = None
                if (
                    g > 0
                    and assignment[g - 1] != accel
                    and formulation.include_transitions
                ):
                    lead_out, lead_in = profile.transition_split(
                        g - 1, assignment[g - 1], accel
                    )
                    prev = assignment[g - 1]
                items.append(
                    _Item(
                        dnn=n,
                        rep=rep,
                        group=g,
                        accel=accel,
                        t0=gp.time_s[accel],
                        bw=gp.req_bw[accel],
                        lead_out=lead_out,
                        lead_in=lead_in,
                        prev_accel=prev,
                    )
                )
    return items


def _timeline(
    formulation: Formulation, items: list[_Item], serialized: bool
) -> None:
    """Place ``items`` on the platform's serial DSAs (Eqs. 4-6).

    Semantics follow the paper and the runtime: per-stream chains, one
    item at a time per accelerator, FCFS tie-breaking by ready time
    then stream index, transition flushes occupying the source DSA and
    loads the destination.  ``serialized`` runs the streams strictly
    back-to-back.
    """
    n_streams = len(formulation.profiles)
    chains: list[list[_Item]] = [[] for _ in range(n_streams)]
    for item in items:
        chains[item.dnn].append(item)

    if serialized or not formulation.resource_constrained:
        clock = 0.0
        for n in range(n_streams):
            if not serialized:
                clock = 0.0
            for item in chains[n]:
                clock += item.lead_out + item.lead_in
                item.start = clock
                clock += item.t0 * item.slowdown
                item.end = clock
        return

    groups_per = [len(p) for p in formulation.profiles]
    upstreams: dict[int, list[int]] = {}
    for up, down in formulation.pipeline:
        upstreams.setdefault(down, []).append(up)

    pointer = [0] * n_streams
    ready = [0.0] * n_streams
    avail: dict[str, float] = {}

    def plan(n: int) -> tuple[float, float, _Item] | None:
        item = chains[n][pointer[n]]
        item_ready = ready[n]
        if n in upstreams and pointer[n] % groups_per[n] == 0:
            rep = pointer[n] // groups_per[n]
            for up in upstreams[n]:
                up_idx = (rep + 1) * groups_per[up] - 1
                if up_idx >= len(chains[up]):
                    continue  # upstream stream runs fewer frames
                if pointer[up] <= up_idx:
                    return None  # dependency not yet scheduled
                item_ready = max(item_ready, chains[up][up_idx].end)
        if item.lead_out > 0 or item.lead_in > 0:
            flush_end = item_ready + item.lead_out
            load_start = max(flush_end, avail.get(item.accel, 0.0))
            item_ready = load_start + item.lead_in
            candidate = item_ready
        else:
            candidate = max(item_ready, avail.get(item.accel, 0.0))
        return candidate, item_ready, item

    remaining = sum(len(c) for c in chains)
    while remaining:
        best: tuple[float, float, int] | None = None
        for n in range(n_streams):
            if pointer[n] >= len(chains[n]):
                continue
            planned = plan(n)
            if planned is None:
                continue
            key = (planned[0], planned[1], n)
            if best is None or key < best:
                best = key
        if best is None:
            raise Infeasible("pipeline dependencies form a deadlock")
        n = best[2]
        planned = plan(n)
        assert planned is not None
        start, _item_ready, item = planned
        if item.lead_out > 0 or item.lead_in > 0:
            src = item.prev_accel
            assert src is not None
            flush_end = ready[n] + item.lead_out
            avail[src] = max(avail.get(src, 0.0), flush_end)
        item.start = start
        item.end = start + item.t0 * item.slowdown
        ready[n] = item.end
        avail[item.accel] = item.end
        pointer[n] += 1
        remaining -= 1


def _interval_slowdowns(
    formulation: Formulation,
    spans: Sequence[tuple[float, float, float]],
) -> list[float]:
    """Duration-weighted slowdown per span under Eqs. 7-8.

    ``spans`` is ``(start, end, req_bw)`` per item.  Contention
    intervals are delimited by every span boundary; within one
    interval the active set is fixed and each active item is charged
    the contention model's slowdown against the cumulative external
    traffic of the others.
    """
    bounds = sorted({t for s, e, _ in spans for t in (s, e)})
    weighted = [0.0] * len(spans)
    covered = [0.0] * len(spans)
    model = formulation.contention_model
    for a, b in zip(bounds, bounds[1:]):
        dur = b - a
        if dur <= 1e-15:
            continue
        active = [
            i
            for i, (s, e, _) in enumerate(spans)
            if s <= a + 1e-15 and e >= b - 1e-15
        ]
        total_bw = sum(spans[i][2] for i in active)
        others = max(len(active) - 1, 1)
        for i in active:
            own = spans[i][2]
            ext = total_bw - own
            factor = 1.0
            if ext > 0:
                factor = model.slowdown(own, [ext / others] * others)
            weighted[i] += dur * factor
            covered[i] += dur
    return [
        weighted[i] / covered[i] if covered[i] > 0 else 1.0
        for i in range(len(spans))
    ]


def _cross_stream_overlap(
    items: Iterable[_Item | ItemTiming],
) -> dict[str, float]:
    """Total pairwise cross-stream overlap per accelerator (Eq. 9)."""
    per_accel: dict[str, list[tuple[float, float, int]]] = {}
    for item in items:
        per_accel.setdefault(item.accel, []).append(
            (item.start, item.end, item.dnn)
        )
    totals: dict[str, float] = {}
    for accel, spans in per_accel.items():
        total = 0.0
        for i, (s1, e1, d1) in enumerate(spans):
            for s2, e2, d2 in spans[i + 1 :]:
                if d1 == d2:
                    continue
                total += max(0.0, min(e1, e2) - max(s1, s2))
        totals[accel] = total
    return totals


def _objective_of(
    formulation: Formulation,
    per_dnn: Sequence[float],
    energy_j: float | None,
) -> float:
    """Eq. 10 (throughput) / Eq. 11 (latency) / energy extension."""
    if formulation.objective == "energy":
        assert energy_j is not None
        return energy_j
    if formulation.objective == "latency":
        return max(per_dnn)
    round_time = max(per_dnn)
    if round_time <= 0:
        return float("-inf")
    return -sum(formulation.repeats) / round_time


def rederive(
    formulation: Formulation,
    assignments: Sequence[Sequence[str]],
    *,
    serialized: bool = False,
) -> Rederivation:
    """Evaluate a schedule from first principles.

    Independent of ``Formulation.evaluate``: scalar arithmetic over
    name-keyed items, a plainly-damped fixed point, and an explicit
    residual so callers can tell "converged" from "gave up".
    """
    items = _build_items(formulation, assignments)
    contention_free = serialized or isinstance(
        formulation.contention_model, NoContentionModel
    )

    iterations = 0
    residual = 0.0
    max_iters = max(4 * formulation.max_iterations, 100)
    for iterations in range(1, max_iters + 1):
        _timeline(formulation, items, serialized)
        if contention_free:
            break
        spans = [(i.start, i.end, i.bw) for i in items]
        new = _interval_slowdowns(formulation, spans)
        residual = max(
            (abs(n - i.slowdown) for n, i in zip(new, items)),
            default=0.0,
        )
        if residual < formulation.tolerance:
            for item, s in zip(items, new):
                item.slowdown = s
            _timeline(formulation, items, serialized)
            break
        for item, s in zip(items, new):
            item.slowdown = 0.5 * item.slowdown + 0.5 * s

    per_dnn = tuple(
        max(
            (i.end for i in items if i.dnn == n),
            default=0.0,
        )
        for n in range(len(formulation.profiles))
    )
    makespan = max((i.end for i in items), default=0.0)
    energy_j = None
    if formulation.accel_power_w:
        energy_j = sum(
            (i.end - i.start)
            * formulation.accel_power_w.get(i.accel, 0.0)
            for i in items
        )
    return Rederivation(
        items=tuple(items),
        per_dnn_time=per_dnn,
        makespan=makespan,
        objective=_objective_of(formulation, per_dnn, energy_j),
        energy_j=energy_j,
        fixed_point_iterations=iterations,
        fixed_point_residual=residual,
    )


# ---------------------------------------------------------------------------
# schedule certificates
# ---------------------------------------------------------------------------


def _structural_violations(
    formulation: Formulation,
    schedule: Schedule,
    max_transitions: int | None,
) -> tuple[list[Violation], bool]:
    """Eq. 1 shape checks; second element: timing checks possible."""
    violations: list[Violation] = []
    profiles = formulation.profiles
    if len(schedule.per_dnn) != len(profiles):
        violations.append(
            Violation(
                kind=ViolationKind.ASSIGNMENT,
                where="schedule",
                message="stream count does not match the workload",
                expected=len(profiles),
                actual=len(schedule.per_dnn),
                equation="Eq. 1",
            )
        )
        return violations, False

    fatal = False
    for n, (profile, stream) in enumerate(zip(profiles, schedule.per_dnn)):
        if len(stream.assignment) != len(profile):
            violations.append(
                Violation(
                    kind=ViolationKind.ASSIGNMENT,
                    where=f"dnn{n}",
                    message="assignment does not cover every layer group "
                    "exactly once",
                    expected=len(profile),
                    actual=len(stream.assignment),
                    equation="Eq. 1",
                )
            )
            fatal = True
            continue
        for g, accel in enumerate(stream.assignment):
            if accel not in profile.groups[g].time_s:
                violations.append(
                    Violation(
                        kind=ViolationKind.CAPABILITY,
                        where=f"dnn{n} group {g}",
                        message=f"group cannot execute on {accel!r}",
                        expected="one of "
                        + ",".join(sorted(profile.groups[g].time_s)),
                        actual=accel,
                        equation="Eq. 1",
                    )
                )
                fatal = True
        if (
            max_transitions is not None
            and stream.num_transitions > max_transitions
        ):
            violations.append(
                Violation(
                    kind=ViolationKind.CONTIGUITY,
                    where=f"dnn{n}",
                    message="segmentation exceeds the transition budget; "
                    "layer groups must form contiguous per-DSA segments",
                    expected=max_transitions,
                    actual=stream.num_transitions,
                    equation="Eq. 1",
                )
            )
    return violations, not fatal


def _claimed_objective(claimed: object) -> float | None:
    if claimed is None:
        return None
    if isinstance(claimed, (int, float)):
        return float(claimed)
    objective = getattr(claimed, "objective", None)
    return float(objective) if objective is not None else None


def verify_schedule(
    formulation: Formulation,
    schedule: Schedule,
    *,
    claimed: EvaluationResult | float | None = None,
    max_transitions: int | None = None,
    rel_tol: float = DEFAULT_REL_TOL,
    slowdown_tol: float = DEFAULT_SLOWDOWN_TOL,
    check_items: bool = True,
) -> Certificate:
    """Check a schedule against every Eq. 1-11 constraint.

    ``claimed`` optionally supplies the certificate under test: the
    producing scheduler's predicted :class:`EvaluationResult` (whose
    objective, per-stream times, and per-item timings are all audited)
    or a bare claimed objective value.
    """
    checks = ["assignment", "capability"]
    if max_transitions is not None:
        checks.append("contiguity")
    violations, timing_ok = _structural_violations(
        formulation, schedule, max_transitions
    )
    if not timing_ok:
        return Certificate(
            violations=tuple(violations),
            checks_run=tuple(checks),
            claimed_objective=_claimed_objective(claimed),
        )

    assignments = [s.assignment for s in schedule.per_dnn]
    derived = rederive(
        formulation, assignments, serialized=schedule.serialized
    )
    checks += ["timeline", "overlap", "contention-fixed-point"]

    if not schedule.serialized:
        makespan = derived.makespan
        allowed = formulation.epsilon_makespan_frac * makespan
        for accel, total in sorted(
            _cross_stream_overlap(derived.items).items()
        ):
            if total > allowed + _T_EPS:
                violations.append(
                    Violation(
                        kind=ViolationKind.OVERLAP,
                        where=f"accelerator {accel}",
                        message="cross-stream overlap exceeds the epsilon "
                        "window of the round makespan",
                        expected=allowed,
                        actual=total,
                        equation="Eq. 9",
                    )
                )

    if derived.fixed_point_residual >= 10 * formulation.tolerance:
        violations.append(
            Violation(
                kind=ViolationKind.CONTENTION,
                where="schedule",
                message="contention slowdowns did not reach a fixed "
                "point; the timeline is not self-consistent",
                expected=formulation.tolerance,
                actual=derived.fixed_point_residual,
                equation="Eqs. 7-8",
            )
        )

    claimed_obj = _claimed_objective(claimed)
    if claimed_obj is not None:
        checks.append("objective")
        scale = max(abs(derived.objective), abs(claimed_obj), 1e-12)
        if abs(derived.objective - claimed_obj) > rel_tol * scale:
            violations.append(
                Violation(
                    kind=ViolationKind.OBJECTIVE,
                    where="objective",
                    message="claimed objective disagrees with the "
                    "independent re-derivation",
                    expected=derived.objective,
                    actual=claimed_obj,
                    equation="Eq. 10/11",
                )
            )

    if (
        check_items
        and isinstance(claimed, EvaluationResult)
        and claimed.items
    ):
        item_cert = verify_items(
            formulation,
            schedule,
            claimed.items,
            claimed_objective=claimed.objective,
            rel_tol=rel_tol,
            slowdown_tol=slowdown_tol,
        )
        violations.extend(item_cert.violations)
        checks.extend(
            c for c in item_cert.checks_run if c not in checks
        )

    return Certificate(
        violations=tuple(violations),
        checks_run=tuple(checks),
        objective=derived.objective,
        claimed_objective=claimed_obj,
        per_dnn_time=derived.per_dnn_time,
        makespan=derived.makespan,
        fixed_point_iterations=derived.fixed_point_iterations,
    )


def verify_items(
    formulation: Formulation,
    schedule: Schedule,
    items: Sequence[ItemTiming],
    *,
    claimed_objective: float | None = None,
    rel_tol: float = DEFAULT_REL_TOL,
    slowdown_tol: float = DEFAULT_SLOWDOWN_TOL,
) -> Certificate:
    """Audit a *timed* certificate: per-item claims against Eqs. 2-11.

    ``items`` is the producing scheduler's claimed timeline
    (:attr:`EvaluationResult.items`).  Each claim is re-checked
    independently: standalone latencies against the profile (Eq. 2),
    transition charges against the flush+load costs (Eq. 3), per-item
    slowdowns against the contention model queried over the *claimed*
    overlap windows (Eqs. 7-8), exclusivity (Eq. 9), and the objective
    composition (Eq. 10/11).
    """
    violations: list[Violation] = []
    checks = [
        "item-shape",
        "item-latency",
        "item-ordering",
        "item-transition",
    ]
    profiles = formulation.profiles
    expected_counts = [
        len(p) * r for p, r in zip(profiles, formulation.repeats)
    ]
    by_stream: dict[int, list[ItemTiming]] = {}
    for item in items:
        by_stream.setdefault(item.dnn, []).append(item)

    for n, expected in enumerate(expected_counts):
        got = len(by_stream.get(n, []))
        if got != expected:
            violations.append(
                Violation(
                    kind=ViolationKind.ASSIGNMENT,
                    where=f"dnn{n}",
                    message="timed certificate does not cover every "
                    "(repeat, group) item exactly once",
                    expected=expected,
                    actual=got,
                    equation="Eq. 1",
                )
            )
    if violations:
        return Certificate(
            violations=tuple(violations),
            checks_run=tuple(checks),
            claimed_objective=claimed_objective,
        )

    for n, stream_items in sorted(by_stream.items()):
        profile = profiles[n]
        assignment = schedule.per_dnn[n].assignment
        ordered = sorted(stream_items, key=lambda i: (i.rep, i.group))
        prev: ItemTiming | None = None
        for item in ordered:
            where = f"dnn{n} rep {item.rep} group {item.group}"
            if item.accel != assignment[item.group]:
                violations.append(
                    Violation(
                        kind=ViolationKind.ASSIGNMENT,
                        where=where,
                        message="item runs on a different DSA than the "
                        "schedule assigns",
                        expected=assignment[item.group],
                        actual=item.accel,
                        equation="Eq. 1",
                    )
                )
                prev = item
                continue
            t0 = profile.groups[item.group].time_s.get(item.accel)
            if t0 is None:
                violations.append(
                    Violation(
                        kind=ViolationKind.CAPABILITY,
                        where=where,
                        message=f"group cannot execute on {item.accel!r}",
                        actual=item.accel,
                        equation="Eq. 1",
                    )
                )
                prev = item
                continue
            if abs(item.standalone_s - t0) > _T_EPS + 1e-6 * t0:
                violations.append(
                    Violation(
                        kind=ViolationKind.LATENCY,
                        where=where,
                        message="claimed standalone latency disagrees "
                        "with the profile",
                        expected=t0,
                        actual=item.standalone_s,
                        equation="Eq. 2",
                    )
                )
            duration = item.end - item.start
            modeled = item.standalone_s * item.slowdown
            if abs(duration - modeled) > _T_EPS + rel_tol * max(
                modeled, _T_EPS
            ):
                violations.append(
                    Violation(
                        kind=ViolationKind.CONTENTION,
                        where=where,
                        message="item duration is not standalone time "
                        "times claimed slowdown",
                        expected=modeled,
                        actual=duration,
                        equation="Eq. 7",
                    )
                )
            if prev is not None:
                if item.start < prev.end - _T_EPS:
                    violations.append(
                        Violation(
                            kind=ViolationKind.ORDERING,
                            where=where,
                            message="item starts before its predecessor "
                            "in the stream chain finished",
                            expected=prev.end,
                            actual=item.start,
                            equation="Eqs. 4-6",
                        )
                    )
                elif (
                    formulation.include_transitions
                    and item.group > 0
                    and item.rep == prev.rep
                    and prev.accel != item.accel
                    and item.accel == assignment[item.group]
                    and prev.accel == assignment[item.group - 1]
                ):
                    required = profile.transition(
                        item.group - 1, prev.accel, item.accel
                    )
                    gap = item.start - prev.end
                    if gap < required - _T_EPS:
                        violations.append(
                            Violation(
                                kind=ViolationKind.TRANSITION,
                                where=f"dnn{n} boundary "
                                f"{item.group - 1} rep {item.rep}",
                                message="DSA switch is charged less "
                                "than its flush+load transition cost",
                                expected=required,
                                actual=gap,
                                equation="Eq. 3",
                            )
                        )
            prev = item

    makespan = max((i.end for i in items), default=0.0)
    if not schedule.serialized:
        checks.append("item-overlap")
        allowed = formulation.epsilon_makespan_frac * makespan
        for accel, total in sorted(_cross_stream_overlap(items).items()):
            if total > allowed + _T_EPS:
                violations.append(
                    Violation(
                        kind=ViolationKind.OVERLAP,
                        where=f"accelerator {accel}",
                        message="cross-stream overlap exceeds the "
                        "epsilon window of the round makespan",
                        expected=allowed,
                        actual=total,
                        equation="Eq. 9",
                    )
                )

        checks.append("item-contention")
        spans = [(i.start, i.end, i.req_bw) for i in items]
        expected_slow = _interval_slowdowns(formulation, spans)
        for item, exp in zip(items, expected_slow):
            if abs(item.slowdown - exp) > slowdown_tol:
                violations.append(
                    Violation(
                        kind=ViolationKind.CONTENTION,
                        where=f"dnn{item.dnn} rep {item.rep} "
                        f"group {item.group}",
                        message="claimed slowdown disagrees with the "
                        "contention model over the claimed overlap "
                        "windows",
                        expected=exp,
                        actual=item.slowdown,
                        equation="Eqs. 7-8",
                    )
                )

    objective = None
    if claimed_objective is not None:
        checks.append("item-objective")
        per_dnn = [
            max(i.end for i in by_stream[n])
            for n in sorted(by_stream)
        ]
        energy_j = None
        if formulation.accel_power_w:
            energy_j = sum(
                (i.end - i.start)
                * formulation.accel_power_w.get(i.accel, 0.0)
                for i in items
            )
        objective = _objective_of(formulation, per_dnn, energy_j)
        scale = max(abs(objective), abs(claimed_objective), 1e-12)
        if abs(objective - claimed_objective) > rel_tol * scale:
            violations.append(
                Violation(
                    kind=ViolationKind.OBJECTIVE,
                    where="objective",
                    message="claimed objective does not follow from "
                    "the claimed per-item timeline",
                    expected=objective,
                    actual=claimed_objective,
                    equation="Eq. 10/11",
                )
            )

    return Certificate(
        violations=tuple(violations),
        checks_run=tuple(checks),
        objective=objective,
        claimed_objective=claimed_objective,
        makespan=makespan,
    )


def verify_result(
    result: "ScheduleResult",
    *,
    max_transitions: int | None = None,
    rel_tol: float = DEFAULT_REL_TOL,
) -> Certificate:
    """Verify a :class:`ScheduleResult` against its own formulation."""
    return verify_schedule(
        result.formulation,
        result.schedule,
        claimed=result.predicted,
        max_transitions=max_transitions,
        rel_tol=rel_tol,
    )


# ---------------------------------------------------------------------------
# generic solver certificates
# ---------------------------------------------------------------------------


def verify_assignment(
    problem: Problem,
    assignment: Assignment,
    claimed_objective: float | None = None,
    *,
    rel_tol: float = 1e-9,
) -> Certificate:
    """Independently check a solver answer on a generic problem.

    Domain membership (Eq. 1's full/unique assignment, generalized),
    every constraint individually, and the objective recomputed from
    the problem's own definition -- none of the solver's bookkeeping
    is trusted.
    """
    violations: list[Violation] = []
    checks = ["domain", "constraints", "objective"]
    for variable in problem.variables:
        if variable.name not in assignment:
            violations.append(
                Violation(
                    kind=ViolationKind.ASSIGNMENT,
                    where=variable.name,
                    message="variable is unassigned",
                    equation="Eq. 1",
                )
            )
        elif assignment[variable.name] not in variable.domain:
            violations.append(
                Violation(
                    kind=ViolationKind.ASSIGNMENT,
                    where=variable.name,
                    message="assigned value is outside the domain",
                    actual=repr(assignment[variable.name]),
                    equation="Eq. 1",
                )
            )
    extra = set(assignment) - {v.name for v in problem.variables}
    for name in sorted(extra):
        violations.append(
            Violation(
                kind=ViolationKind.ASSIGNMENT,
                where=name,
                message="assignment binds an undeclared variable",
                equation="Eq. 1",
            )
        )
    if violations:
        return Certificate(
            violations=tuple(violations),
            checks_run=("domain",),
            claimed_objective=claimed_objective,
        )

    for k, constraint in enumerate(problem.constraints):
        try:
            satisfied = bool(constraint(assignment))
        except Infeasible as exc:
            satisfied = False
            detail = f" ({exc})"
        else:
            detail = ""
        if not satisfied:
            violations.append(
                Violation(
                    kind=ViolationKind.CONSTRAINT,
                    where=f"constraint {k}",
                    message="constraint rejects the assignment" + detail,
                )
            )

    objective: float | None = None
    try:
        objective = problem.objective(assignment)
    except Infeasible as exc:
        violations.append(
            Violation(
                kind=ViolationKind.CONSTRAINT,
                where="objective",
                message=f"objective declares the assignment infeasible "
                f"({exc})",
            )
        )
    if objective is not None and claimed_objective is not None:
        scale = max(abs(objective), abs(claimed_objective), 1e-12)
        if abs(objective - claimed_objective) > rel_tol * scale:
            violations.append(
                Violation(
                    kind=ViolationKind.OBJECTIVE,
                    where="objective",
                    message="claimed objective disagrees with a fresh "
                    "evaluation",
                    expected=objective,
                    actual=claimed_objective,
                )
            )
    return Certificate(
        violations=tuple(violations),
        checks_run=tuple(checks),
        objective=objective,
        claimed_objective=claimed_objective,
    )


def verify_solve(
    problem: Problem, result: "SolveResult"
) -> Certificate:
    """Audit a full solver run: best answer plus incumbent stream.

    The incumbent sequence must be strictly improving with
    monotonically non-decreasing progress counters (the contract the
    serving layer's update points rely on), and every incumbent --
    including the final best -- must independently verify.
    """
    violations: list[Violation] = []
    checks = ["incumbent-monotone", "incumbent-feasible", "best"]
    previous = float("inf")
    last_nodes = -1
    for k, inc in enumerate(result.incumbents):
        if inc.objective >= previous:
            violations.append(
                Violation(
                    kind=ViolationKind.ORDERING,
                    where=f"incumbent {k}",
                    message="incumbent does not strictly improve on "
                    "its predecessor",
                    expected=f"< {previous}",
                    actual=inc.objective,
                )
            )
        if inc.nodes_explored < last_nodes:
            violations.append(
                Violation(
                    kind=ViolationKind.ORDERING,
                    where=f"incumbent {k}",
                    message="incumbent progress counter went backwards",
                    expected=f">= {last_nodes}",
                    actual=inc.nodes_explored,
                )
            )
        previous = inc.objective
        last_nodes = max(last_nodes, inc.nodes_explored)
        cert = verify_assignment(
            problem, inc.assignment, inc.objective
        )
        violations.extend(cert.violations)

    best_objective = None
    if result.best is not None:
        best_objective = result.best.objective
        if (
            result.incumbents
            and result.best is not result.incumbents[-1]
        ):
            violations.append(
                Violation(
                    kind=ViolationKind.ORDERING,
                    where="best",
                    message="best is not the last recorded incumbent",
                )
            )
    return Certificate(
        violations=tuple(violations),
        checks_run=tuple(checks),
        claimed_objective=best_objective,
    )


# ---------------------------------------------------------------------------
# cache-admission certificates
# ---------------------------------------------------------------------------


def verify_cache_entry(
    scheduler: "HaXCoNN",
    workload: "Workload",
    schedule: Schedule,
    *,
    stored_signature: str | None = None,
    rel_tol: float = DEFAULT_REL_TOL,
) -> Certificate:
    """Admission-time audit of a schedule destined for the cache.

    Stale-entry detection first: the schedule must actually describe
    *this* workload under *this* scheduler configuration (stream
    names, per-stream group counts from the current grouping, and --
    when the entry carries one -- the stored workload signature).
    Structural and timing checks then run via
    :func:`verify_schedule`.
    """
    from repro.core.schedule_cache import workload_signature

    violations: list[Violation] = []
    checks = ["signature"]
    expected_signature = workload_signature(workload, scheduler)
    if (
        stored_signature is not None
        and stored_signature != expected_signature
    ):
        violations.append(
            Violation(
                kind=ViolationKind.SIGNATURE,
                where="cache",
                message="stored signature is stale for this scheduler "
                "configuration",
                expected=expected_signature,
                actual=stored_signature,
            )
        )
    names = workload.names
    if len(schedule.per_dnn) != len(names):
        violations.append(
            Violation(
                kind=ViolationKind.SIGNATURE,
                where="cache",
                message="cached schedule covers a different stream set",
                expected=len(names),
                actual=len(schedule.per_dnn),
            )
        )
        return Certificate(
            violations=tuple(violations), checks_run=tuple(checks)
        )
    for n, stream in enumerate(schedule.per_dnn):
        if stream.dnn_name != names[n]:
            violations.append(
                Violation(
                    kind=ViolationKind.SIGNATURE,
                    where=f"dnn{n}",
                    message="cached stream name does not match the "
                    "workload",
                    expected=names[n],
                    actual=stream.dnn_name,
                )
            )

    formulation, _profiles = scheduler.build_formulation(workload)
    for n, (profile, stream) in enumerate(
        zip(formulation.profiles, schedule.per_dnn)
    ):
        if len(stream.assignment) != len(profile):
            violations.append(
                Violation(
                    kind=ViolationKind.SIGNATURE,
                    where=f"dnn{n}",
                    message="cached assignment was produced under a "
                    "different layer grouping",
                    expected=len(profile),
                    actual=len(stream.assignment),
                )
            )
    if violations:
        return Certificate(
            violations=tuple(violations), checks_run=tuple(checks)
        )

    schedule_cert = verify_schedule(
        formulation,
        schedule,
        max_transitions=scheduler.max_transitions,
        rel_tol=rel_tol,
    )
    return Certificate(
        violations=schedule_cert.violations,
        checks_run=tuple(checks) + schedule_cert.checks_run,
        objective=schedule_cert.objective,
        per_dnn_time=schedule_cert.per_dnn_time,
        makespan=schedule_cert.makespan,
        fixed_point_iterations=schedule_cert.fixed_point_iterations,
    )

