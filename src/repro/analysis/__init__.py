"""Static analysis: schedule certificates and determinism lints.

The solvers in :mod:`repro.solver` are cross-checked only against each
other; a shared misreading of a paper constraint would pass every
differential test.  This package closes that hole with two independent
checkers:

- :mod:`repro.analysis.verify` -- a **schedule certificate checker**
  that re-derives objectives and feasibility from first principles
  (per-layer latencies, Eq. 3 transition charges, Eqs. 7-8 contention
  slowdowns over the actual overlap windows) and checks every Eq. 1-11
  constraint, emitting structured :class:`~repro.analysis.diagnostics.
  Violation` records with a minimal failing-constraint core;
- :mod:`repro.analysis.lint` -- an **AST lint pass** over the codebase
  that mechanically enforces the invariants the deterministic solver
  portfolio and virtual-time simulator depend on (seeded randomness,
  no wall-clock reads in virtual-time code, epoch-locked shared-state
  mutation, no unordered-set iteration feeding schedule construction).

Both surface through ``haxconn verify`` / ``haxconn lint`` and the
``lint-and-verify`` CI job.
"""

from repro.analysis.diagnostics import (
    Certificate,
    CertificateError,
    Violation,
    ViolationKind,
    require,
)
from repro.analysis.lint import (
    LintConfig,
    LintFinding,
    RULES,
    lint_paths,
    lint_source,
)
from repro.analysis.verify import (
    verify_assignment,
    verify_cache_entry,
    verify_items,
    verify_result,
    verify_schedule,
    verify_solve,
)

__all__ = [
    "Certificate",
    "CertificateError",
    "Violation",
    "ViolationKind",
    "LintConfig",
    "LintFinding",
    "RULES",
    "lint_paths",
    "lint_source",
    "require",
    "verify_assignment",
    "verify_cache_entry",
    "verify_items",
    "verify_result",
    "verify_schedule",
    "verify_solve",
]
