"""Held-out guidance race: does the trained model actually help?

``haxconn learn eval`` (and the bench gate) measure guidance the only
way that is honest about anytime behavior: race the *same* portfolio
configuration twice on scenarios the store has never seen -- once
unguided, once with the store-trained :class:`~repro.learn.guide.
SearchGuide` -- under the deterministic virtual node clock, and
compare

- **TTFI** -- virtual time to the first incumbent strictly better
  than the best naive (contention-oblivious) seed, i.e. when serving
  could first leave the naive schedule,
- **tt5%** -- virtual time until the incumbent is within 5% of the
  certified optimum,
- **nodes-to-optimal** -- virtual nodes when the final optimum first
  became the incumbent.

Both runs must certify the *same* optimum -- the race asserts bitwise
objective equality, so an eval run doubles as a differential test of
the guidance machinery -- and ``verify=True`` routes every returned
schedule through :mod:`repro.analysis.verify`.

Scenarios where a naive seed is already optimal are skipped: neither
solver can improve on the root there, so TTFI is undefined and the
scenario measures nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.learn.guide import SearchGuide

if TYPE_CHECKING:
    from repro.core.haxconn import HaXCoNN, ScheduleResult
    from repro.core.solve_store import SolveStore
    from repro.core.workload import Workload
    from repro.fuzz.universe import ScenarioSpec

#: eligible held-out problems: big enough that search takes real work,
#: small enough that a CI shard solves dozens of them
MIN_SPACE = 24
MAX_SPACE = 120_000

#: relative tolerance for "strictly better than the best naive seed"
_REL_TOL = 1e-12


def _scheduler_for(
    spec: "ScenarioSpec",
    *,
    solver: str,
    workers: int = 3,
    guide: SearchGuide | None = None,
) -> tuple["HaXCoNN", "Workload"]:
    """Hermetic scheduler + workload for one fuzz scenario.

    ``max_transitions=1`` keeps domains small enough for volume;
    ``clock="nodes"`` with the thread backend makes every reported
    timestamp a pure function of the search trace.
    """
    from repro.core.haxconn import HaXCoNN
    from repro.learn.corpus import _database

    scheduler = HaXCoNN(
        spec.platform,
        db=_database(spec.platform),
        max_groups=spec.max_groups,
        max_transitions=1,
        solver=solver,
        solver_workers=workers,
        solver_backend="threads" if solver == "portfolio" else "auto",
        solver_clock="nodes" if solver == "portfolio" else "wall",
        guide=guide,
    )
    return scheduler, spec.workload()


def _space_size(scheduler: "HaXCoNN", workload: "Workload") -> int:
    formulation, _profiles = scheduler.build_formulation(workload)
    problem = scheduler.build_problem(workload, formulation)
    return int(problem.search_space_size)


def build_seed_store(
    store: "SolveStore",
    seeds: Iterable[int],
    *,
    limit: int = 16,
    min_space: int = MIN_SPACE,
    max_space: int = MAX_SPACE,
) -> dict[str, Any]:
    """Solve eligible fuzz scenarios and persist them into ``store``.

    The training-corpus builder for CI and the bench: every adopted
    schedule is a certified ``bnb`` optimum, stored under its workload
    signature exactly as serving would store it.  Returns counters.
    """
    from repro.core.schedule_cache import (
        schedule_to_payload,
        workload_signature,
    )
    from repro.fuzz.universe import generate_scenario
    from repro.solver.problem import Infeasible

    stored = 0
    skipped = 0
    for seed in seeds:
        if stored >= limit:
            break
        spec = generate_scenario(seed)
        try:
            scheduler, workload = _scheduler_for(spec, solver="bnb")
            if not min_space <= _space_size(scheduler, workload) <= max_space:
                skipped += 1
                continue
            result = scheduler.schedule(workload)
        except (Infeasible, KeyError, ValueError):
            skipped += 1
            continue
        sig = workload_signature(workload, scheduler)
        store.append_schedule(
            sig, schedule_to_payload(result.schedule)
        )
        stored += 1
    return {"stored": stored, "skipped": skipped}


def _first_improvement(
    result: "ScheduleResult",
) -> tuple[float | None, float | None]:
    """(best naive objective, TTFI) for one portfolio run.

    The best naive seed is the best *non-learned* warm start -- the
    baseline a serving layer would run before any solve -- so both the
    guided and unguided runs measure TTFI against the same yardstick.
    """
    solve = result.solver
    assert solve is not None
    naive = [
        objective
        for label, objective in getattr(solve, "warm_starts", ())
        if objective is not None and not label.startswith("learned")
    ]
    if not naive:
        return None, None
    best_naive = min(naive)
    threshold = best_naive - _REL_TOL * abs(best_naive)
    ttfi = next(
        (
            inc.wall_time_s
            for inc in solve.incumbents
            if inc.objective < threshold
        ),
        None,
    )
    return best_naive, ttfi


def _nodes_to_optimal(result: "ScheduleResult") -> int | None:
    solve = result.solver
    assert solve is not None and solve.best is not None
    final = solve.best.objective
    return next(
        (
            inc.nodes_explored
            for inc in solve.incumbents
            if inc.objective == final
        ),
        None,
    )


def _median(values: list[float]) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def guidance_race(
    store: "SolveStore",
    seeds: Iterable[int],
    *,
    limit: int = 6,
    workers: int = 3,
    verify: bool = True,
    min_space: int = MIN_SPACE,
    max_space: int = MAX_SPACE,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Race unguided vs guided portfolios on held-out scenarios.

    Scenarios whose workload signature is already in ``store`` are
    skipped (they would not be cold), as are scenarios where a naive
    seed is already optimal.  Raises :class:`ValueError` when the
    store holds no model for the current feature schema.  Returns
    ``(per-scenario rows, summary)``; the summary's
    ``ttfi_speedup_median`` / ``tt5_speedup_median`` are the gate
    inputs, and ``objective_mismatches`` is always 0 or the race has
    already raised.
    """
    from repro.core.schedule_cache import workload_signature
    from repro.experiments.solver_race import anytime_profile
    from repro.fuzz.universe import generate_scenario
    from repro.solver.problem import Infeasible

    guide = SearchGuide.from_store(store)
    if guide is None:
        raise ValueError(
            "no trained model in the store for the current feature "
            "schema; run `haxconn learn train` first"
        )
    known = set(store.schedules())
    rows: list[dict[str, Any]] = []
    skipped = {"space": 0, "warm": 0, "naive_optimal": 0, "error": 0}
    for seed in seeds:
        if len(rows) >= limit:
            break
        spec = generate_scenario(seed)
        try:
            base_sched, workload = _scheduler_for(
                spec, solver="portfolio", workers=workers
            )
            if workload_signature(workload, base_sched) in known:
                skipped["warm"] += 1
                continue
            if not (
                min_space
                <= _space_size(base_sched, workload)
                <= max_space
            ):
                skipped["space"] += 1
                continue
            base = base_sched.schedule(workload, verify=verify)
            lrn_sched, workload2 = _scheduler_for(
                spec, solver="portfolio", workers=workers, guide=guide
            )
            lrn = lrn_sched.schedule(workload2, verify=verify)
        except (Infeasible, KeyError, ValueError):
            skipped["error"] += 1
            continue
        assert base.solver is not None and lrn.solver is not None
        assert base.solver.best is not None
        assert lrn.solver.best is not None
        if base.solver.best.objective != lrn.solver.best.objective:
            raise AssertionError(
                f"guided optimum diverged on seed {seed}: "
                f"{base.solver.best.objective!r} != "
                f"{lrn.solver.best.objective!r}"
            )
        _naive, base_ttfi = _first_improvement(base)
        _naive2, lrn_ttfi = _first_improvement(lrn)
        if base_ttfi is None or lrn_ttfi is None:
            # neither side can beat the naive root: nothing to time
            skipped["naive_optimal"] += 1
            continue
        optimum = base.solver.best.objective
        _first_b, base_tt5 = anytime_profile(
            base.solver.incumbents, optimum
        )
        _first_l, lrn_tt5 = anytime_profile(
            lrn.solver.incumbents, optimum
        )
        rows.append(
            {
                "seed": seed,
                "scenario": spec.name,
                "objective": optimum,
                "optimal": bool(
                    base.solver.optimal and lrn.solver.optimal
                ),
                "base_ttfi_s": base_ttfi,
                "learned_ttfi_s": lrn_ttfi,
                "ttfi_speedup": base_ttfi / max(lrn_ttfi, 1e-9),
                "base_tt5_s": base_tt5,
                "learned_tt5_s": lrn_tt5,
                "tt5_speedup": (
                    None
                    if base_tt5 is None or lrn_tt5 is None
                    else base_tt5 / max(lrn_tt5, 1e-9)
                ),
                "base_nodes_to_opt": _nodes_to_optimal(base),
                "learned_nodes_to_opt": _nodes_to_optimal(lrn),
                "verified": verify,
            }
        )
    summary = {
        "scenarios": len(rows),
        "skipped": dict(skipped),
        "objective_mismatches": 0,
        "all_optimal": all(r["optimal"] for r in rows),
        "verified": verify,
        "ttfi_speedup_median": _median(
            [float(r["ttfi_speedup"]) for r in rows]
        ),
        "tt5_speedup_median": _median(
            [
                float(r["tt5_speedup"])
                for r in rows
                if r["tt5_speedup"] is not None
            ]
        ),
    }
    return rows, summary
