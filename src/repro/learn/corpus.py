"""Training-set construction and model training from the solve store.

The store keys every schedule by :func:`repro.core.schedule_cache.
workload_signature`, which encodes the full scheduler configuration --
platform, grouping, transition budget, cost-model flags, objective,
and the stream mix.  That makes stored records *re-materializable*:
:func:`parse_signature` inverts the signature, a fresh scheduler and
formulation are rebuilt hermetically (no environment reads, fresh
:class:`~repro.profiling.database.ProfileDB` per platform), and the
stored optimal schedule becomes labeled training data:

- **branch examples** -- per stream, the stored fragment is the
  positive; the most competitive other domain values (lowest isolated
  chain time) are negatives,
- **quality examples** -- the stored optimum plus the
  contention-oblivious baselines, each labeled with ``objective /
  |serialized-GPU objective|`` (lower is better for every objective).

Only PCCS-configured records parse back exactly (other contention
models are skipped: a record must re-materialize against the *same*
cost model it was solved under), and serialized-fallback records are
skipped entirely -- they carry no information about which concurrent
fragment wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.learn.features import FeatureContext, FloatArray, feature_schema_id
from repro.learn.models import LogisticModel, ModelBundle, TreeModel

if TYPE_CHECKING:
    from repro.core.haxconn import HaXCoNN
    from repro.core.solve_store import SolveStore
    from repro.core.workload import Workload

#: negatives kept per stream: the most competitive (fastest isolated)
#: non-optimal fragments, a deterministic subsample of the domain
NEGATIVES_PER_STREAM = 48

#: minimum labeled branch examples (and positives) worth training on
MIN_BRANCH_EXAMPLES = 24
MIN_POSITIVES = 2


@dataclass(frozen=True)
class ParsedSignature:
    """A workload signature, inverted back into scheduler settings."""

    platform: str
    max_groups: int | None
    max_transitions: int
    include_transitions: bool
    resource_constrained: bool
    fallback_margin: float
    epsilon_makespan_frac: float
    contention: str
    objective: str
    #: per stream: (model chain, repeats)
    streams: tuple[tuple[tuple[str, ...], int], ...]
    pipeline: tuple[tuple[int, int], ...]


def parse_signature(sig: str) -> ParsedSignature | None:
    """Invert :func:`~repro.core.schedule_cache.workload_signature`.

    Returns ``None`` for signatures this version cannot parse --
    records from configurations the trainer does not model are simply
    not training data.
    """
    parts = sig.split("|")
    if len(parts) != 11:
        return None
    try:
        streams = []
        for entry in parts[9].split(";"):
            chain, _x, repeats = entry.rpartition("x")
            if not chain:
                return None
            streams.append((tuple(chain.split("+")), int(repeats)))
        pipeline = tuple(
            (int(edge.split("->")[0]), int(edge.split("->")[1]))
            for edge in parts[10].split(",")
            if edge
        )
        return ParsedSignature(
            platform=parts[0],
            max_groups=None if parts[1] == "None" else int(parts[1]),
            max_transitions=int(parts[2]),
            include_transitions=parts[3] == "True",
            resource_constrained=parts[4] == "True",
            fallback_margin=float(parts[5]),
            epsilon_makespan_frac=float(parts[6]),
            contention=parts[7],
            objective=parts[8],
            streams=tuple(streams),
            pipeline=pipeline,
        )
    except (ValueError, IndexError):
        return None


#: hermetic per-process profile databases, one per platform name
_DBS: dict[str, Any] = {}


def _database(platform: str) -> Any:
    # deferred: profiling pulls in the simulator stack
    from repro.profiling.database import ProfileDB
    from repro.soc.platform import get_platform

    db = _DBS.get(platform)
    if db is None:
        db = ProfileDB(get_platform(platform))
        _DBS[platform] = db
    return db


def rematerialize(
    parsed: ParsedSignature,
) -> tuple["HaXCoNN", "Workload"] | None:
    """Scheduler + workload for a parsed signature, or ``None`` when
    the configuration cannot be rebuilt exactly (unknown platform or
    model, non-PCCS contention)."""
    from repro.core.haxconn import HaXCoNN
    from repro.core.workload import Workload, WorkloadDNN

    if parsed.contention != "PCCSModel":
        return None
    try:
        db = _database(parsed.platform)
    except (KeyError, ValueError):
        return None
    seen: dict[tuple[tuple[str, ...], int], int] = {}
    dnns = []
    for models, repeats in parsed.streams:
        count = seen.get((models, repeats), 0)
        seen[(models, repeats)] = count + 1
        dnns.append(
            WorkloadDNN(models=models, repeats=repeats, instance=count)
        )
    try:
        workload = Workload(
            dnns=tuple(dnns),
            objective=parsed.objective,
            pipeline=parsed.pipeline,
        )
        scheduler = HaXCoNN(
            parsed.platform,
            db=db,
            max_groups=parsed.max_groups,
            max_transitions=parsed.max_transitions,
            include_transitions=parsed.include_transitions,
            resource_constrained=parsed.resource_constrained,
            fallback_margin=parsed.fallback_margin,
            epsilon_makespan_frac=parsed.epsilon_makespan_frac,
        )
        # touch one profile so unknown model names fail here, not later
        for dnn in workload:
            for model in dnn.models:
                db.profile(model, max_groups=parsed.max_groups)
    except (KeyError, ValueError):
        return None
    return scheduler, workload


@dataclass
class TrainingSet:
    """Labeled examples mined from the store, plus mining telemetry."""

    branch_x: FloatArray
    branch_y: FloatArray
    quality_x: FloatArray
    quality_y: FloatArray
    scenarios: int
    skipped: int

    @property
    def positives(self) -> int:
        return int(self.branch_y.sum())


def build_training_set(
    store: "SolveStore", *, max_scenarios: int | None = None
) -> TrainingSet:
    """Mine every parseable stored schedule into labeled examples."""
    from repro.solver.problem import Infeasible

    branch_rows: list[FloatArray] = []
    branch_labels: list[float] = []
    quality_rows: list[FloatArray] = []
    quality_labels: list[float] = []
    scenarios = 0
    skipped = 0
    for sig, payload in sorted(store.schedules().items()):
        if max_scenarios is not None and scenarios >= max_scenarios:
            break
        if payload["serialized"]:
            skipped += 1
            continue
        parsed = parse_signature(sig)
        if parsed is None:
            skipped += 1
            continue
        built = rematerialize(parsed)
        if built is None:
            skipped += 1
            continue
        scheduler, workload = built
        try:
            ctx = FeatureContext(scheduler, workload)
        except (Infeasible, KeyError, ValueError):
            skipped += 1
            continue
        streams = payload["streams"]
        if len(streams) != ctx.n_streams:
            skipped += 1
            continue
        stored = [tuple(s["assignment"]) for s in streams]
        if any(
            stored[n] not in ctx.problem.variables[n].domain
            for n in range(ctx.n_streams)
        ):
            skipped += 1  # grouping drift: fragment left the domain
            continue

        # -- branch examples: stored fragment vs competitive others ----
        for n, variable in enumerate(ctx.problem.variables):
            competitors = sorted(
                (a for a in variable.domain if a != stored[n]),
                key=lambda a: (ctx.chain_time(n, a), a),
            )[:NEGATIVES_PER_STREAM]
            branch_rows.append(ctx.fragment_features(n, stored[n]))
            branch_labels.append(1.0)
            for a in competitors:
                branch_rows.append(ctx.fragment_features(n, a))
                branch_labels.append(0.0)

        # -- quality examples: optimum + naive baselines ---------------
        try:
            _schedule, serial = scheduler.serialized_gpu_schedule(
                workload, ctx.formulation
            )
        except (Infeasible, KeyError, ValueError):
            serial = None
        if serial is not None and abs(serial.objective) > 0:
            candidates: list[dict[str, Any]] = [
                {f"dnn{n}": stored[n] for n in range(ctx.n_streams)}
            ]
            candidates.extend(
                assignment
                for _label, assignment in (
                    scheduler.contention_oblivious_seeds(
                        workload, ctx.formulation, ctx.problem
                    )
                )
            )
            for assignment in candidates:
                try:
                    objective = ctx.problem.evaluate(assignment)
                except (Infeasible, ValueError, KeyError):
                    continue
                quality_rows.append(
                    ctx.quality_features(
                        [
                            tuple(assignment[f"dnn{n}"])
                            for n in range(ctx.n_streams)
                        ]
                    )
                )
                quality_labels.append(objective / abs(serial.objective))
        scenarios += 1

    def stack(rows: list[FloatArray], width: int) -> FloatArray:
        if not rows:
            return np.zeros((0, width), dtype=np.float64)
        return np.stack(rows)

    from repro.learn.features import FEATURE_NAMES, QUALITY_FEATURE_NAMES

    return TrainingSet(
        branch_x=stack(branch_rows, len(FEATURE_NAMES)),
        branch_y=np.asarray(branch_labels, dtype=np.float64),
        quality_x=stack(quality_rows, len(QUALITY_FEATURE_NAMES)),
        quality_y=np.asarray(quality_labels, dtype=np.float64),
        scenarios=scenarios,
        skipped=skipped,
    )


def train_bundle(
    store: "SolveStore", *, max_scenarios: int | None = None, seed: int = 0
) -> tuple[ModelBundle, dict[str, Any]]:
    """Train both predictors on the store's corpus.

    ``seed`` is recorded in the bundle metadata for provenance; both
    trainers are deterministic regardless (fixed iteration counts,
    deterministic tie-breaks), so the same corpus and seed always
    produce a byte-identical serialized bundle.

    Raises :class:`ValueError` when the corpus is too small to train.
    """
    ts = build_training_set(store, max_scenarios=max_scenarios)
    if (
        len(ts.branch_y) < MIN_BRANCH_EXAMPLES
        or ts.positives < MIN_POSITIVES
    ):
        raise ValueError(
            f"corpus too small: {len(ts.branch_y)} branch examples "
            f"({ts.positives} positives) from {ts.scenarios} scenarios"
        )
    schema = feature_schema_id()
    branch = LogisticModel.train(ts.branch_x, ts.branch_y, schema=schema)
    if len(ts.quality_y) >= 2:
        quality = TreeModel.train(
            ts.quality_x, ts.quality_y, schema=schema, min_leaf=2
        )
    else:  # degenerate corpus: a constant estimator is still valid
        quality = TreeModel(root={"leaf": 1.0}, schema=schema)
    stats: dict[str, Any] = {
        "schema": schema,
        "seed": int(seed),
        "scenarios": ts.scenarios,
        "skipped": ts.skipped,
        "branch_examples": int(len(ts.branch_y)),
        "branch_positives": ts.positives,
        "quality_examples": int(len(ts.quality_y)),
    }
    bundle = ModelBundle(
        schema=schema, branch=branch, quality=quality, meta=dict(stats)
    )
    return bundle, stats


def train_into_store(
    store: "SolveStore",
    *,
    min_schedules: int = 4,
    max_scenarios: int | None = None,
    seed: int = 0,
) -> dict[str, Any] | None:
    """Train on the store and persist the bundle as a ``model`` record.

    The self-improvement hook the fleet and CLI call after a run: a
    no-op (returns ``None``) when the store is read-only or holds too
    few schedules to train on.  Returns the training stats otherwise.
    """
    if store.readonly or len(store.schedules()) < min_schedules:
        return None
    try:
        bundle, stats = train_bundle(
            store, max_scenarios=max_scenarios, seed=seed
        )
    except ValueError:
        return None
    stats["appended"] = store.append_model(bundle.sig, bundle.to_dict())
    return stats


def corpus_stats(store: "SolveStore") -> dict[str, Any]:
    """What ``haxconn learn stats`` prints: corpus and model state."""
    from repro.learn.models import model_sig

    schema = feature_schema_id()
    body = store.model_for(model_sig(schema))
    parseable = 0
    serialized = 0
    for sig, payload in sorted(store.schedules().items()):
        if payload["serialized"]:
            serialized += 1
        elif parse_signature(sig) is not None:
            parseable += 1
    out: dict[str, Any] = {
        "schema": schema,
        "schedules": len(store.schedules()),
        "parseable": parseable,
        "serialized": serialized,
        "model": body is not None,
    }
    if body is not None:
        out["model_meta"] = dict(body.get("meta", {}))
    return out
