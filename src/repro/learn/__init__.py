"""Learned search guidance mined from the solve store.

The solve store accumulates certified (workload signature ->
schedule) pairs across serving, fleet, and fuzz runs; this package
turns that corpus into *anytime-safe* solver guidance:

- :mod:`repro.learn.features` -- deterministic, versioned feature
  extraction from workload signatures, layer-group tensors, PCCS
  contention tables, and platform descriptors,
- :mod:`repro.learn.models` -- small pure-NumPy logistic-regression
  and depth-bounded decision-tree models with a compact JSON
  serialization stored in the solve store as ``model`` records,
- :mod:`repro.learn.guide` -- the three predictors wired into the
  solver hot path: branch-ordering scores, warm-start ranking, and
  an incumbent-quality estimator,
- :mod:`repro.learn.corpus` -- training-set construction from stored
  schedules and the ``haxconn learn train`` entry point,
- :mod:`repro.learn.evalrace` -- the held-out guidance race behind
  ``haxconn learn eval`` and the bench gate.

Guidance only *reorders* search: the branch-and-bound lower bound
still proves optimality and ``analysis.verify`` still gates every
adopted schedule, so a bad model can never change a result -- it can
only fail to speed one up (see docs/architecture.md section 5c).
"""

from repro.learn.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    FeatureContext,
    feature_schema_id,
)
from repro.learn.guide import SearchGuide
from repro.learn.models import LogisticModel, ModelBundle, TreeModel, model_sig

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "FeatureContext",
    "feature_schema_id",
    "SearchGuide",
    "LogisticModel",
    "ModelBundle",
    "TreeModel",
    "model_sig",
]
