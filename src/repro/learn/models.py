"""Pure-NumPy models with deterministic training and JSON round-trips.

Two small model families cover the three predictors of
:mod:`repro.learn.guide`:

- :class:`LogisticModel` -- L2-regularized logistic regression trained
  by fixed-iteration full-batch gradient descent (zero initialization,
  fixed learning rate, no stochasticity), scoring the probability that
  a fragment belongs to the stored-optimal schedule,
- :class:`TreeModel` -- a depth-bounded CART regression tree with
  deterministic split selection (lowest SSE, ties broken by lowest
  feature index then lowest threshold), estimating the relative
  quality of a complete assignment.

Training is bit-reproducible: the same corpus and seed produce a
byte-identical serialized model in every process (the property the
training-determinism tests pin).  Serialization uses ``json`` float
literals, which round-trip ``float64`` exactly, and every model
carries the feature-schema id it was trained under so a drifted
extractor can never feed it misaligned vectors.

A :class:`ModelBundle` packages both models plus training metadata
into the solve store's ``model`` record body (kind ``model``,
signature :func:`model_sig`, last-wins per signature -- retraining on
a grown store supersedes the previous bundle in place).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.learn.features import FloatArray

#: bump together with the record body layout
MODEL_RECORD_VERSION = 1


def model_sig(schema: str) -> str:
    """Solve-store signature of the model bundle for ``schema``."""
    return f"learn:v{MODEL_RECORD_VERSION}:{schema}"


def _sigmoid(z: FloatArray) -> FloatArray:
    out: FloatArray = 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))
    return out


@dataclass
class LogisticModel:
    """L2-regularized logistic regression over standardized features."""

    weights: FloatArray
    bias: float
    mean: FloatArray
    scale: FloatArray
    schema: str

    @classmethod
    def train(
        cls,
        x: FloatArray,
        y: FloatArray,
        *,
        schema: str,
        iters: int = 250,
        lr: float = 0.5,
        l2: float = 1e-3,
    ) -> "LogisticModel":
        """Deterministic full-batch gradient descent (zero init)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ValueError(f"bad training shapes {x.shape} / {y.shape}")
        mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        xs = (x - mean) / scale
        n = float(x.shape[0])
        w = np.zeros(x.shape[1], dtype=np.float64)
        b = 0.0
        for _ in range(iters):
            p = _sigmoid(xs @ w + b)
            err = p - y
            w -= lr * ((xs.T @ err) / n + l2 * w)
            b -= lr * float(err.mean())
        return cls(weights=w, bias=b, mean=mean, scale=scale, schema=schema)

    def predict(self, x: FloatArray) -> FloatArray:
        """P(positive) per row of ``x`` (raw, unstandardized features)."""
        xs = (np.asarray(x, dtype=np.float64) - self.mean) / self.scale
        return _sigmoid(xs @ self.weights + self.bias)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "logistic",
            "schema": self.schema,
            "weights": [float(v) for v in self.weights],
            "bias": float(self.bias),
            "mean": [float(v) for v in self.mean],
            "scale": [float(v) for v in self.scale],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LogisticModel":
        if payload.get("kind") != "logistic":
            raise ValueError(f"not a logistic model: {payload.get('kind')!r}")
        return cls(
            weights=np.asarray(payload["weights"], dtype=np.float64),
            bias=float(payload["bias"]),
            mean=np.asarray(payload["mean"], dtype=np.float64),
            scale=np.asarray(payload["scale"], dtype=np.float64),
            schema=str(payload["schema"]),
        )


#: cap on candidate thresholds per feature: evenly spaced over the
#: sorted unique values, so split search cost is bounded and the
#: chosen thresholds are a pure function of the value distribution
_MAX_THRESHOLDS = 15


def _split_candidates(values: FloatArray) -> list[float]:
    unique = np.unique(values)
    if unique.size < 2:
        return []
    gaps = unique.size - 1
    take = min(_MAX_THRESHOLDS, gaps)
    idx = np.unique(
        np.round(np.linspace(0, gaps - 1, take)).astype(np.int64)
    )
    return [float((unique[i] + unique[i + 1]) / 2.0) for i in idx]


def _sse(y: FloatArray) -> float:
    if y.size == 0:
        return 0.0
    return float(((y - y.mean()) ** 2).sum())


def _grow(
    x: FloatArray, y: FloatArray, depth: int, max_depth: int, min_leaf: int
) -> dict[str, Any]:
    if depth >= max_depth or y.size < 2 * min_leaf or _sse(y) <= 1e-12:
        return {"leaf": float(y.mean())}
    parent = _sse(y)
    best: tuple[float, int, float] | None = None
    for j in range(x.shape[1]):
        for thr in _split_candidates(x[:, j]):
            left = x[:, j] <= thr
            n_left = int(left.sum())
            if n_left < min_leaf or y.size - n_left < min_leaf:
                continue
            score = _sse(y[left]) + _sse(y[~left])
            # strict < keeps the first (lowest feature index, lowest
            # threshold) of any exact tie -- the deterministic tie-break
            if best is None or score < best[0]:
                best = (score, j, thr)
    if best is None or best[0] >= parent - 1e-12:
        return {"leaf": float(y.mean())}
    _score, j, thr = best
    left = x[:, j] <= thr
    return {
        "f": j,
        "t": thr,
        "lo": _grow(x[left], y[left], depth + 1, max_depth, min_leaf),
        "hi": _grow(x[~left], y[~left], depth + 1, max_depth, min_leaf),
    }


@dataclass
class TreeModel:
    """Depth-bounded CART regression with deterministic splits."""

    root: dict[str, Any]
    schema: str
    max_depth: int = 4
    min_leaf: int = 8

    @classmethod
    def train(
        cls,
        x: FloatArray,
        y: FloatArray,
        *,
        schema: str,
        max_depth: int = 4,
        min_leaf: int = 8,
    ) -> "TreeModel":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ValueError(f"bad training shapes {x.shape} / {y.shape}")
        root = _grow(x, y, 0, max_depth, min_leaf)
        return cls(
            root=root, schema=schema, max_depth=max_depth, min_leaf=min_leaf
        )

    def predict_one(self, x: FloatArray) -> float:
        node = self.root
        while "leaf" not in node:
            j, thr = int(node["f"]), float(node["t"])
            node = node["lo"] if float(x[j]) <= thr else node["hi"]
        return float(node["leaf"])

    def predict(self, x: FloatArray) -> FloatArray:
        x = np.asarray(x, dtype=np.float64)
        return np.asarray(
            [self.predict_one(row) for row in x], dtype=np.float64
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "tree",
            "schema": self.schema,
            "max_depth": self.max_depth,
            "min_leaf": self.min_leaf,
            "root": self.root,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TreeModel":
        if payload.get("kind") != "tree":
            raise ValueError(f"not a tree model: {payload.get('kind')!r}")
        return cls(
            root=dict(payload["root"]),
            schema=str(payload["schema"]),
            max_depth=int(payload["max_depth"]),
            min_leaf=int(payload["min_leaf"]),
        )


@dataclass
class ModelBundle:
    """The solve store's ``model`` record body: both predictors plus
    training provenance (corpus size, example counts, schema id)."""

    schema: str
    branch: LogisticModel
    quality: TreeModel
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": MODEL_RECORD_VERSION,
            "schema": self.schema,
            "branch": self.branch.to_dict(),
            "quality": self.quality.to_dict(),
            "meta": dict(self.meta),
        }

    def to_json(self) -> str:
        """Canonical compact serialization (byte-stable round-trip)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelBundle":
        if int(payload.get("v", 0)) != MODEL_RECORD_VERSION:
            raise ValueError(
                f"unsupported model record version {payload.get('v')!r}"
            )
        return cls(
            schema=str(payload["schema"]),
            branch=LogisticModel.from_dict(payload["branch"]),
            quality=TreeModel.from_dict(payload["quality"]),
            meta=dict(payload.get("meta", {})),
        )

    @property
    def sig(self) -> str:
        return model_sig(self.schema)
