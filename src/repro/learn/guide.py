"""The three learned predictors, packaged for the solver hot path.

A :class:`SearchGuide` wraps a trained :class:`~repro.learn.models.
ModelBundle` and materializes, per ``(scheduler, workload)`` pair, a
:class:`ProblemGuide` holding everything the solver stack consumes:

1. **Branch-ordering scores** -- ``scores[variable][value]`` is the
   branch model's probability that ``value`` is the stream's fragment
   of the optimal schedule.  The portfolio's ``learned`` strategy
   feeds these to ``bnb.dfs``'s ``child_order`` hook, which *reorders*
   feasible children only: bounds, pruning, and incumbent admission
   are untouched, so guidance changes when the optimum is found, never
   what it is.
2. **Warm-start ranking** -- :meth:`SearchGuide.fragment_ranker`
   returns the callable :class:`repro.core.schedule_cache.
   ScheduleCache` uses to key warm-start candidates by predicted
   quality (then content sha) before composition.
3. **Incumbent-quality estimation** -- :meth:`ProblemGuide.
   seed_quality` scores a complete assignment, and
   :meth:`ProblemGuide.synthesized_seeds` proposes the
   argmax-per-stream assignment (plus one runner-up) as labeled root
   seeds, letting the portfolio start its hunters near the predicted
   optimum.  Seeds are ordinary warm starts: they are *evaluated* at
   the root like any other, so a wrong prediction costs one
   evaluation, never a wrong result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro.learn.features import FeatureContext, feature_schema_id
from repro.learn.models import ModelBundle, model_sig

if TYPE_CHECKING:  # layering: core never imports learn at runtime
    from repro.core.haxconn import HaXCoNN
    from repro.core.solve_store import SolveStore
    from repro.core.workload import Workload


class ProblemGuide:
    """Per-problem guidance tables, cheap to query and fork-safe.

    ``scores`` is a plain ``dict`` of ``dict`` s keyed by variable
    name and domain value -- picklable and safely inherited by forked
    portfolio workers.
    """

    def __init__(self, ctx: FeatureContext, bundle: ModelBundle) -> None:
        self._ctx = ctx
        self._bundle = bundle
        self.scores: dict[str, dict[Any, float]] = {}
        for n, variable in enumerate(ctx.problem.variables):
            matrix = ctx.fragment_matrix(n, list(variable.domain))
            probs = bundle.branch.predict(matrix)
            self.scores[variable.name] = {
                value: float(p) for value, p in zip(variable.domain, probs)
            }

    def seed_quality(self, assignment: Mapping[str, Any]) -> float:
        """Predicted relative quality of a complete assignment.

        The target convention is ``objective / |serialized-GPU
        objective|`` -- lower is better for every objective -- so
        callers rank candidate seeds ascending.
        """
        per_stream = [
            tuple(assignment[f"dnn{n}"])
            for n in range(self._ctx.n_streams)
        ]
        vector = self._ctx.quality_features(per_stream)
        return float(self._bundle.quality.predict_one(vector))

    def synthesized_seeds(self) -> list[tuple[str, dict[str, Any]]]:
        """Root seeds near the predicted optimum, labeled for
        provenance.  ``learned-greedy`` takes every stream's
        highest-scored fragment; ``learned-second`` swaps in the
        runner-up for the stream whose top-2 margin is smallest (the
        prediction most likely to be wrong)."""
        greedy: dict[str, Any] = {}
        margins: list[tuple[float, str, Any]] = []
        for variable in self._ctx.problem.variables:
            table = self.scores[variable.name]
            ranked = sorted(
                variable.domain,
                key=lambda v: (-table[v], v),
            )
            greedy[variable.name] = ranked[0]
            if len(ranked) > 1:
                margins.append(
                    (
                        table[ranked[0]] - table[ranked[1]],
                        variable.name,
                        ranked[1],
                    )
                )
        seeds = [("learned-greedy", dict(greedy))]
        if margins:
            margins.sort(key=lambda m: (m[0], m[1]))
            _margin, name, runner_up = margins[0]
            second = dict(greedy)
            second[name] = runner_up
            if second != greedy:
                seeds.append(("learned-second", second))
        return seeds


class SearchGuide:
    """Store-trained guidance, attachable to a :class:`HaXCoNN`.

    Built from the solve store's ``model`` record for the *current*
    feature schema; a bundle trained under a different schema id is
    ignored (:meth:`from_store` returns ``None``), which is what keeps
    models and extractors from drifting apart.
    """

    def __init__(self, bundle: ModelBundle) -> None:
        if bundle.schema != feature_schema_id():
            raise ValueError(
                f"model schema {bundle.schema!r} does not match "
                f"extractor schema {feature_schema_id()!r}"
            )
        self.bundle = bundle

    @classmethod
    def from_store(cls, store: "SolveStore") -> "SearchGuide | None":
        """Load the guide for the current feature schema, if trained."""
        body = store.model_for(model_sig(feature_schema_id()))
        if body is None:
            return None
        try:
            return cls(ModelBundle.from_dict(body))
        except (KeyError, ValueError, TypeError):
            return None  # malformed or foreign record: no guidance

    def for_problem(
        self,
        scheduler: "HaXCoNN",
        workload: "Workload",
        *,
        formulation: Any = None,
        problem: Any = None,
    ) -> ProblemGuide:
        ctx = FeatureContext(
            scheduler, workload, formulation=formulation, problem=problem
        )
        return ProblemGuide(ctx, self.bundle)

    def fragment_ranker(
        self, scheduler: "HaXCoNN"
    ) -> Callable[["Workload", str, tuple[str, ...]], float]:
        """The schedule cache's warm-start quality key.

        Returns ``rank(workload, model_key, assignment) -> score``
        (higher is better).  Contexts are cached per workload
        signature, so ranking a bucket of fragments prices the
        workload once.  Stale fragments -- wrong length or an
        unsupported accelerator -- score ``0.0`` and fall back to
        content-sha order.
        """
        contexts: dict[str, FeatureContext] = {}
        bundle = self.bundle

        def rank(
            workload: "Workload", model_key: str, assignment: tuple[str, ...]
        ) -> float:
            # deferred: schedule_cache imports core.haxconn
            from repro.core.schedule_cache import workload_signature

            sig = workload_signature(workload, scheduler)
            ctx = contexts.get(sig)
            if ctx is None:
                ctx = FeatureContext(scheduler, workload)
                contexts[sig] = ctx
            stream = next(
                (
                    n
                    for n, dnn in enumerate(workload.dnns)
                    if dnn.name.split("@")[0] == model_key
                ),
                None,
            )
            if stream is None:
                return 0.0
            vector = ctx.try_fragment_features(stream, tuple(assignment))
            if vector is None:
                return 0.0
            return float(bundle.branch.predict(np.stack([vector]))[0])

        return rank
