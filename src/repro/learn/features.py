"""Deterministic, versioned feature extraction for learned guidance.

One *fragment* is a ``(stream, assignment)`` pair -- a candidate
per-stream segmentation exactly as it appears in a solver domain, a
schedule-cache warm-start bucket, or a stored schedule record.  Each
fragment maps to a fixed-order ``float64`` vector derived from the
layer-group tensors (isolated chain time, per-DSA busy time, per-group
memory-bandwidth demand), the PCCS contention surface, the platform
descriptor, and the workload shape.

Determinism is load-bearing: the same scenario must produce the same
vector bit for bit on every machine and in every process, because
models trained in one run score fragments in another.  Every feature
is a pure function of the formulation's cost tables (themselves pure),
iteration is always in stream/domain/accelerator declaration order,
and no feature reads a clock, an environment variable, or an unordered
container.

Models and extractors are kept from drifting apart by a *schema id*:
the SHA-256 of ``[FEATURE_SCHEMA_VERSION, FEATURE_NAMES,
QUALITY_FEATURE_NAMES]``.  A model record stores the id it was trained
under and is ignored by any extractor with a different id, so adding
or reordering features can never silently misalign weights.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import TYPE_CHECKING, Sequence

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # layering: core never imports learn at runtime
    from repro.core.formulation import Formulation
    from repro.core.haxconn import HaXCoNN
    from repro.core.workload import Workload
    from repro.solver.problem import Problem

FloatArray = NDArray[np.float64]

#: bump when adding, removing, or reordering features
FEATURE_SCHEMA_VERSION = 1

#: fixed accelerator-slot count: platforms with fewer DSAs leave the
#: tail slots at zero, so one model serves every modeled SoC
BUSY_SLOTS = 4

#: fragment feature order -- append-only within a schema version
FEATURE_NAMES: tuple[str, ...] = (
    "chain_rel",  # isolated chain time / stream's fastest assignment
    "chain_share",  # stream's fastest chain / sum over streams
    "transition_frac",  # transitions used / transition budget
    "gpu_group_frac",  # fraction of layer groups mapped to the GPU
    "busy_share_0",  # busy-time share per accelerator slot, in
    "busy_share_1",  # platform declaration order, zero-padded to
    "busy_share_2",  # BUSY_SLOTS entries
    "busy_share_3",
    "bw_mean_frac",  # mean per-group bandwidth demand / DRAM bandwidth
    "bw_peak_frac",  # peak per-group bandwidth demand / DRAM bandwidth
    "contention_exposure",  # PCCS slowdown - 1 vs the other streams
    "streams_frac",  # concurrent streams / 4
    "domain_log",  # log10(stream domain size) / 4
    "objective_latency",
    "objective_throughput",
    "objective_energy",
    "groups_frac",  # layer groups in the stream / 12
    "accels_frac",  # platform accelerator count / BUSY_SLOTS
    "dram_bw_log",  # log10(DRAM bytes/s) / 12
    "emc_frac",  # effective 2-client EMC capacity / DRAM bandwidth
    "repeats_frac",  # frames per round / 4, capped at 1
    "pipelined",  # stream participates in a pipeline edge
    "distinct_accels",  # distinct DSAs in the assignment / accel count
    "starts_on_gpu",
    "ends_on_gpu",
)

#: workload-level quality features: per-dimension mean and max over
#: the streams of a complete assignment
QUALITY_FEATURE_NAMES: tuple[str, ...] = tuple(
    f"{agg}_{name}" for agg in ("mean", "max") for name in FEATURE_NAMES
)


def feature_schema_id() -> str:
    """Content hash binding models to this exact feature layout."""
    blob = json.dumps(
        [
            FEATURE_SCHEMA_VERSION,
            list(FEATURE_NAMES),
            list(QUALITY_FEATURE_NAMES),
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class FeatureContext:
    """Cost tables for one ``(scheduler, workload)`` pair.

    Building the context prices every stream's fastest assignment once;
    per-fragment feature calls are then cheap table lookups plus one
    contention-model query.  The context never mutates the scheduler or
    formulation it reads from.
    """

    def __init__(
        self,
        scheduler: "HaXCoNN",
        workload: "Workload",
        *,
        formulation: "Formulation | None" = None,
        problem: "Problem | None" = None,
    ) -> None:
        if formulation is None:
            formulation, _profiles = scheduler.build_formulation(workload)
        if problem is None:
            problem = scheduler.build_problem(workload, formulation)
        self.workload = workload
        self.formulation = formulation
        self.problem = problem
        platform = scheduler.platform
        self.accel_names: tuple[str, ...] = platform.accelerator_names
        self.gpu: str = platform.gpu.name
        self.dram_bw = float(platform.dram_bandwidth)
        self.emc_frac = float(platform.emc_capacity(2)) / self.dram_bw
        self.max_transitions = int(scheduler.max_transitions)
        self._contention = scheduler.contention_model
        self.n_streams = len(workload)
        self.domain_sizes: tuple[int, ...] = tuple(
            len(v.domain) for v in problem.variables
        )
        self.repeats: tuple[int, ...] = tuple(
            int(r) for r in formulation.repeats
        )
        self._pipelined = frozenset(
            n for edge in workload.pipeline for n in edge
        )
        self._chain: dict[tuple[int, tuple[str, ...]], float] = {}
        self._busy: dict[tuple[int, tuple[str, ...]], dict[str, float]] = {}
        self.min_chain: tuple[float, ...] = tuple(
            min(self.chain_time(n, a) for a in v.domain)
            for n, v in enumerate(problem.variables)
        )
        self.sum_min_chain = float(sum(self.min_chain))
        obj = workload.objective
        self._objective_onehot = (
            1.0 if obj == "latency" else 0.0,
            1.0 if obj == "throughput" else 0.0,
            1.0 if obj == "energy" else 0.0,
        )
        #: external load each stream presents to the others: mean
        #: bandwidth demand under its fastest isolated assignment
        baseline: list[float] = []
        for n, v in enumerate(problem.variables):
            fastest = min(
                v.domain, key=lambda a: (self.chain_time(n, a), a)
            )
            baseline.append(self._mean_peak_bw(n, fastest)[0])
        self._baseline_bw: tuple[float, ...] = tuple(baseline)

    # -- cost-table access ---------------------------------------------
    def chain_time(self, n: int, assignment: tuple[str, ...]) -> float:
        key = (n, assignment)
        if key not in self._chain:
            self._chain[key] = float(
                self.formulation.chain_time(n, assignment)
            )
        return self._chain[key]

    def busy_times(
        self, n: int, assignment: tuple[str, ...]
    ) -> dict[str, float]:
        key = (n, assignment)
        if key not in self._busy:
            self._busy[key] = dict(
                self.formulation.busy_times(n, assignment)
            )
        return self._busy[key]

    def _mean_peak_bw(
        self, n: int, assignment: tuple[str, ...]
    ) -> tuple[float, float]:
        """Mean and peak per-group bandwidth demand, in bytes/s."""
        profile = self.formulation.profiles[n]
        demands = [
            float(profile[g].req_bw.get(assignment[g], 0.0))
            for g in range(len(profile))
        ]
        if not demands:
            return 0.0, 0.0
        return float(sum(demands)) / len(demands), float(max(demands))

    # -- feature vectors -----------------------------------------------
    def fragment_features(
        self, n: int, assignment: tuple[str, ...]
    ) -> FloatArray:
        """The fixed-order feature vector of one fragment.

        Raises :class:`KeyError`/:class:`ValueError`/:class:`IndexError`
        for fragments the formulation cannot price (wrong length, or an
        accelerator a layer group does not support); use
        :meth:`try_fragment_features` where stale fragments are
        expected.
        """
        profile = self.formulation.profiles[n]
        if len(assignment) != len(profile):
            raise ValueError(
                f"fragment length {len(assignment)} != "
                f"{len(profile)} groups of stream {n}"
            )
        chain = self.chain_time(n, assignment)
        busy = self.busy_times(n, assignment)
        safe_chain = chain if chain > 0 else 1.0
        transitions = sum(
            1 for i in range(len(assignment) - 1)
            if assignment[i] != assignment[i + 1]
        )
        mean_bw, peak_bw = self._mean_peak_bw(n, assignment)
        externals = [
            self._baseline_bw[m]
            for m in range(self.n_streams)
            if m != n and self._baseline_bw[m] > 0
        ]
        exposure = 0.0
        if mean_bw > 0 and externals:
            exposure = min(
                10.0,
                max(
                    0.0,
                    float(self._contention.slowdown(mean_bw, externals))
                    - 1.0,
                ),
            )
        busy_shares = [0.0] * BUSY_SLOTS
        for slot, accel in enumerate(self.accel_names[:BUSY_SLOTS]):
            busy_shares[slot] = float(busy.get(accel, 0.0)) / safe_chain
        values = (
            chain / self.min_chain[n] if self.min_chain[n] > 0 else 1.0,
            (
                self.min_chain[n] / self.sum_min_chain
                if self.sum_min_chain > 0
                else 0.0
            ),
            transitions / max(1, self.max_transitions),
            sum(1 for a in assignment if a == self.gpu) / len(assignment),
            busy_shares[0],
            busy_shares[1],
            busy_shares[2],
            busy_shares[3],
            mean_bw / self.dram_bw,
            peak_bw / self.dram_bw,
            exposure,
            self.n_streams / 4.0,
            math.log10(max(1, self.domain_sizes[n])) / 4.0,
            self._objective_onehot[0],
            self._objective_onehot[1],
            self._objective_onehot[2],
            len(profile) / 12.0,
            len(self.accel_names) / float(BUSY_SLOTS),
            math.log10(self.dram_bw) / 12.0,
            self.emc_frac,
            min(1.0, self.repeats[n] / 4.0),
            1.0 if n in self._pipelined else 0.0,
            len(set(assignment)) / len(self.accel_names),
            1.0 if assignment[0] == self.gpu else 0.0,
            1.0 if assignment[-1] == self.gpu else 0.0,
        )
        return np.asarray(values, dtype=np.float64)

    def try_fragment_features(
        self, n: int, assignment: tuple[str, ...]
    ) -> FloatArray | None:
        """Like :meth:`fragment_features`, ``None`` for stale fragments.

        Stale means unpriceable: wrong length, or an accelerator the
        formulation prices at infinity (unsupported on this platform
        or by some layer group) -- a model must never see non-finite
        inputs.
        """
        try:
            vector = self.fragment_features(n, assignment)
        except (KeyError, ValueError, IndexError, TypeError):
            return None
        if not np.all(np.isfinite(vector)):
            return None
        return vector

    def fragment_matrix(
        self, n: int, assignments: Sequence[tuple[str, ...]]
    ) -> FloatArray:
        """Feature rows for a stream's candidate set, in given order."""
        if not assignments:
            return np.zeros((0, len(FEATURE_NAMES)), dtype=np.float64)
        return np.stack(
            [self.fragment_features(n, a) for a in assignments]
        )

    def quality_features(
        self, assignments: Sequence[tuple[str, ...]]
    ) -> FloatArray:
        """Workload-level features of one complete assignment.

        Per-dimension mean and max over the streams' fragment vectors,
        in :data:`QUALITY_FEATURE_NAMES` order.
        """
        if len(assignments) != self.n_streams:
            raise ValueError(
                f"expected {self.n_streams} per-stream assignments, "
                f"got {len(assignments)}"
            )
        rows = np.stack(
            [
                self.fragment_features(n, tuple(a))
                for n, a in enumerate(assignments)
            ]
        )
        return np.concatenate([rows.mean(axis=0), rows.max(axis=0)])
