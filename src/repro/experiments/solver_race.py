"""Solver race: portfolio vs. single-threaded branch and bound.

The paper leans on Z3 converging to near-optimal schedules within ~2s
(Section 3.5); this reproduction's equivalent lever is the parallel
anytime portfolio of :mod:`repro.solver.portfolio`.  This experiment
races both solvers on the 3-network scenario and reports the anytime
profile that matters to D-HaX-CoNN and the serving layer:

- ``first_s`` -- time to the first incumbent (when the runtime can
  first leave the naive schedule),
- ``tt5pct_s`` -- time until the active incumbent is within 5% of the
  certified optimum (when the phase has effectively converged),
- ``total_s`` -- time to certified optimality.

Run via ``haxconn experiment solver-race``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload
from repro.experiments.common import format_table, get_db
from repro.solver.bnb import Incumbent

if TYPE_CHECKING:
    from repro.learn.guide import SearchGuide

#: default scenario: three dissimilar networks on the three-DSA SD865
PLATFORM = "sd865"
MODELS = ("vgg19", "resnet152", "googlenet")
MAX_GROUPS = 6
MAX_TRANSITIONS = 2


def anytime_profile(
    incumbents: list[Incumbent], optimum: float, *, within: float = 0.05
) -> tuple[float | None, float | None]:
    """(time to first incumbent, time to within ``within`` of optimum)."""
    first_s = incumbents[0].wall_time_s if incumbents else None
    threshold = optimum * (1.0 + within) if optimum >= 0 else optimum * (
        1.0 - within
    )
    tt_within = next(
        (i.wall_time_s for i in incumbents if i.objective <= threshold),
        None,
    )
    return first_s, tt_within


def nodes_to_optimal(incumbents: list[Incumbent]) -> int | None:
    """Explored-node count when the final incumbent first appeared."""
    if not incumbents:
        return None
    final = incumbents[-1].objective
    return next(
        (i.nodes_explored for i in incumbents if i.objective == final),
        None,
    )


def race(
    platform: str = PLATFORM,
    models: tuple[str, ...] = MODELS,
    *,
    max_groups: int = MAX_GROUPS,
    max_transitions: int = MAX_TRANSITIONS,
    workers: int = 3,
    seed: int = 0,
    guide: "SearchGuide | None" = None,
) -> list[dict[str, object]]:
    """Race the solvers on one workload; one result row per solver.

    With a store-trained ``guide`` (see :mod:`repro.learn`) a third
    ``learned/N`` row races the guided portfolio -- same worker count,
    same seed -- so its anytime profile is directly comparable to the
    unguided portfolio row.
    """
    db = get_db(platform)
    workload = Workload.concurrent(*models, objective="latency")
    configs: list[tuple[str, dict[str, object]]] = [
        ("bnb", {"solver": "bnb"}),
        (
            f"portfolio/{workers}",
            {
                "solver": "portfolio",
                "solver_workers": workers,
                "solver_seed": seed,
            },
        ),
    ]
    if guide is not None:
        configs.append(
            (
                f"learned/{workers}",
                {
                    "solver": "portfolio",
                    "solver_workers": workers,
                    "solver_seed": seed,
                    "guide": guide,
                },
            )
        )
    rows = []
    for label, kwargs in configs:
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
            **kwargs,  # type: ignore[arg-type]
        )
        start = time.perf_counter()
        result = scheduler.schedule(workload)
        elapsed = time.perf_counter() - start
        solve = result.solver
        assert solve is not None
        first_s, tt5 = anytime_profile(
            solve.incumbents, solve.best.objective
        )
        counters = scheduler.eval_counters.as_dict()
        rows.append(
            {
                "solver": label,
                "workload": "+".join(models),
                "objective_ms": solve.best.objective * 1e3,
                "optimal": solve.optimal,
                "first_s": first_s,
                "tt5pct_s": tt5,
                "total_s": elapsed,
                "nodes": solve.nodes_explored,
                "nodes_to_opt": nodes_to_optimal(solve.incumbents),
                "evals": int(counters["evals"]),
                "memo_hit_%": counters["memo_hit_rate"] * 100.0,
                "fp_iter": counters["fp_iter_mean"],
            }
        )
    return rows


def run() -> list[dict[str, object]]:
    return race()


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        (
            "solver",
            "workload",
            "objective_ms",
            "optimal",
            "first_s",
            "tt5pct_s",
            "total_s",
            "nodes",
            "nodes_to_opt",
            "evals",
            "memo_hit_%",
            "fp_iter",
        ),
        title="Solver race: anytime convergence "
        f"({PLATFORM}, groups<={MAX_GROUPS}, "
        f"transitions<={MAX_TRANSITIONS})",
    )
