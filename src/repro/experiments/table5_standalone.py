"""Table 5: standalone DNN runtimes -- paper vs calibrated model.

For every (platform, accelerator, model) cell of the paper's Table 5,
reports the paper's measured milliseconds next to the calibrated
analytical model's prediction and their ratio.  DLA runs use GPU
fallback for unsupported groups (TensorRT GPUFallbackMode), and the
DenseNet/Xavier-DLA cell stays unbuildable, as in the paper.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.perf.calibration import calibration_report
from repro.soc.platform import get_platform


def run(
    platform_names: tuple[str, ...] = ("orin", "xavier")
) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for name in platform_names:
        platform = get_platform(name)
        rows.extend(calibration_report(platform))
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        ["platform", "accelerator", "model", "paper_ms", "modeled_ms", "ratio"],
        title="Table 5: standalone runtimes, paper vs calibrated model",
    )


if __name__ == "__main__":
    print(format_results(run()))
