"""Table 6: the ten headline experiments (Scenarios 2-4).

Each experiment co-runs the paper's DNN pair (or a chain plus a
parallel DNN) on its platform, with its objective, under five
schedulers: GPU-only, naive GPU & DSA, Herald, H2H, and HaX-CoNN.
Measured latency and FPS come from the simulator; the improvement
column compares HaX-CoNN against the best-performing baseline, as in
the paper's last column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.workload import Workload
from repro.experiments.common import format_table, get_db, make_scheduler
from repro.runtime.scenarios import (
    ScenarioOutcome,
    scenario2_parallel,
    scenario3_pipeline,
    scenario4_hybrid,
)
from repro.soc.platform import get_platform

SCHEDULERS = ("gpu_only", "naive", "herald", "h2h", "haxconn")


@dataclass(frozen=True)
class Table6Experiment:
    """One row of paper Table 6."""

    number: int
    platform: str
    goal: str  # "latency" (min latency) or "throughput" (max FPS)
    scenario: int  # 2 = parallel, 3 = pipeline, 4 = hybrid
    dnn1: tuple[str, ...]
    dnn2: str


EXPERIMENTS: tuple[Table6Experiment, ...] = (
    Table6Experiment(1, "xavier", "latency", 2, ("vgg19",), "resnet152"),
    Table6Experiment(2, "xavier", "latency", 2, ("resnet152",), "inception"),
    Table6Experiment(3, "xavier", "throughput", 3, ("alexnet",), "resnet101"),
    Table6Experiment(4, "xavier", "throughput", 3, ("resnet101",), "googlenet"),
    Table6Experiment(
        5, "xavier", "latency", 4, ("googlenet", "resnet152"), "fcn_resnet18"
    ),
    Table6Experiment(6, "orin", "latency", 2, ("vgg19",), "resnet152"),
    Table6Experiment(7, "orin", "throughput", 3, ("googlenet",), "resnet101"),
    Table6Experiment(
        8, "orin", "latency", 4, ("resnet101", "googlenet"), "inception"
    ),
    Table6Experiment(9, "sd865", "throughput", 3, ("googlenet",), "resnet101"),
    Table6Experiment(10, "sd865", "latency", 2, ("inception",), "resnet152"),
)


def _drive(
    exp: Table6Experiment, scheduler_name: str
) -> ScenarioOutcome:
    platform = get_platform(exp.platform)
    db = get_db(exp.platform)
    scheduler = make_scheduler(scheduler_name, platform, db=db)
    if exp.scenario == 2:
        return scenario2_parallel(
            exp.dnn1[0], exp.dnn2, scheduler, platform, objective=exp.goal
        )
    if exp.scenario == 3:
        return scenario3_pipeline(
            exp.dnn1[0], exp.dnn2, scheduler, platform, objective=exp.goal
        )
    if exp.scenario == 4:
        return scenario4_hybrid(
            exp.dnn1, exp.dnn2, scheduler, platform, objective=exp.goal
        )
    raise ValueError(f"unknown scenario {exp.scenario}")


def run_experiment(exp: Table6Experiment) -> dict[str, object]:
    """One Table 6 row: all five schedulers, measured."""
    row: dict[str, object] = {
        "exp": exp.number,
        "platform": exp.platform,
        "goal": "Min Latency" if exp.goal == "latency" else "Max FPS",
        "dnn1": "+".join(exp.dnn1),
        "dnn2": exp.dnn2,
    }
    outcomes: dict[str, ScenarioOutcome] = {}
    for name in SCHEDULERS:
        outcome = _drive(exp, name)
        outcomes[name] = outcome
        row[f"{name}_lat_ms"] = outcome.latency_ms
        row[f"{name}_fps"] = outcome.fps
    best_baseline = min(
        outcomes[name].latency_ms for name in SCHEDULERS if name != "haxconn"
    )
    hax = outcomes["haxconn"]
    row["haxconn_schedule"] = " | ".join(
        s.describe() for s in hax.schedule
    )
    row["improvement_pct"] = (
        (best_baseline - hax.latency_ms) / best_baseline * 100
    )
    return row


def run(
    numbers: Sequence[int] | None = None,
) -> list[dict[str, object]]:
    selected = [
        e for e in EXPERIMENTS if numbers is None or e.number in numbers
    ]
    return [run_experiment(e) for e in selected]


def format_results(rows: list[dict[str, object]]) -> str:
    columns = ["exp", "platform", "goal", "dnn1", "dnn2"]
    columns += [f"{s}_lat_ms" for s in SCHEDULERS]
    columns += ["improvement_pct"]
    return format_table(rows, columns, title="Table 6: Scenarios 2-4")


def workload_for(exp: Table6Experiment) -> Workload:
    """The workload object an experiment schedules (for tests)."""
    from repro.core.workload import WorkloadDNN

    return Workload(
        dnns=(WorkloadDNN.of(*exp.dnn1), WorkloadDNN.of(exp.dnn2)),
        objective=exp.goal,
    )


if __name__ == "__main__":
    print(format_results(run()))
