"""Fig. 3: EMC utilization of conv layers vs input and filter size.

Sweeps convolution layers with the paper's input sizes i1-i5
((64,224,224) ... (64,56,56)) and filter sizes f1-f5 (1x1 ... 5x5) on
both the GPU and the DLA.  The paper's two observations must hold:

* GPU and DLA utilizations are correlated and roughly proportional
  (the basis of the four-step black-box estimation), and
* utilization falls as filter size grows (arithmetic intensity rises).
"""

from __future__ import annotations

from repro.dnn.graph import DNNGraph
from repro.dnn.grouping import group_layers
from repro.dnn.layers import Conv2d
from repro.dnn.shapes import TensorShape
from repro.experiments.common import format_table
from repro.profiling.blackbox import emc_utilization
from repro.soc.platform import get_platform

#: paper's input sweep: (channels, height, width)
INPUT_SIZES = (
    ("i1", TensorShape(64, 224, 224)),
    ("i2", TensorShape(64, 224, 112)),
    ("i3", TensorShape(64, 112, 112)),
    ("i4", TensorShape(64, 112, 56)),
    ("i5", TensorShape(64, 56, 56)),
)

#: paper's filter sweep
FILTER_SIZES = (("f1", 1), ("f2", 2), ("f3", 3), ("f4", 4), ("f5", 5))


def _conv_group(shape: TensorShape, kernel: int):
    graph = DNNGraph(f"conv_k{kernel}", shape)
    graph.add(Conv2d("conv", 64, kernel, padding="same"))
    return group_layers(graph)[0]


def run(platform_name: str = "xavier") -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    gpu, dsa = platform.gpu, platform.dsa
    rows: list[dict[str, object]] = []
    for in_label, shape in INPUT_SIZES:
        for f_label, kernel in FILTER_SIZES:
            group = _conv_group(shape, kernel)
            rows.append(
                {
                    "input": in_label,
                    "filter": f_label,
                    "gpu_util_pct": emc_utilization(group, gpu, platform)
                    * 100,
                    "dla_util_pct": emc_utilization(group, dsa, platform)
                    * 100,
                }
            )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        ["input", "filter", "gpu_util_pct", "dla_util_pct"],
        title="Fig. 3: EMC utilization of conv layers (GPU vs DLA)",
    )


if __name__ == "__main__":
    print(format_results(run()))
