"""DSA design-space study: how much accelerator buys concurrency?

The paper observes that platform balance decides the schedule shape:
on the Snapdragon 865 the GPU and DSP are "more balanced in terms of
their computation capability", so whole-network splits beat layer
surgery; on Orin the DLA is far weaker, so HaX-CoNN leans on the GPU.
This study makes that observation quantitative: sweep the DSA's peak
throughput (as a fraction of the shipped DLA) on an Orin-class SoC and
measure where concurrent co-scheduling starts paying off against the
GPU-only serial baseline -- a question an SoC architect would ask when
sizing the next DLA.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.contention.pccs import calibrate_pccs
from repro.core.baselines import gpu_only, naive_concurrent
from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload
from repro.experiments.common import format_table
from repro.profiling.database import ProfileDB
from repro.runtime.executor import run_schedule
from repro.soc.platform import Platform, get_platform

DEFAULT_SCALES = (0.5, 1.0, 2.0, 4.0)


def scaled_dsa_platform(
    base: Platform, compute_scale: float, bw_scale: float = 1.0
) -> Platform:
    """Copy of ``base`` with the DSA's compute and/or bandwidth scaled.

    The bandwidth share is capped at 0.9 of the controller -- no DSA
    monopolizes a shared EMC.
    """
    if compute_scale <= 0 or bw_scale <= 0:
        raise ValueError("scales must be positive")
    accels = tuple(
        dataclasses.replace(
            a,
            peak_flops=a.peak_flops * compute_scale,
            standalone_bw_frac=min(a.standalone_bw_frac * bw_scale, 0.9),
        )
        if a.family in ("dla", "dsp")
        else a
        for a in base.accelerators
    )
    return dataclasses.replace(
        base,
        name=f"{base.name}-dsa{compute_scale:g}x{bw_scale:g}",
        accelerators=accels,
    )


def run_point(
    platform: Platform,
    pair: tuple[str, str],
    *,
    max_groups: int = 8,
) -> dict[str, float]:
    db = ProfileDB(platform)
    db._pccs = calibrate_pccs(platform)
    workload = Workload.concurrent(*pair, objective="latency")
    scheduler = HaXCoNN(
        platform, db=db, max_groups=max_groups, max_transitions=1
    )
    result = scheduler.schedule(workload)
    hax = run_schedule(result, platform).latency_ms
    serial = run_schedule(
        gpu_only(workload, platform, db=db, max_groups=max_groups),
        platform,
    ).latency_ms
    naive = run_schedule(
        naive_concurrent(
            workload, platform, db=db, max_groups=max_groups
        ),
        platform,
    ).latency_ms
    dsa_groups = sum(
        1
        for s in result.schedule
        for accel in s.assignment
        if accel != platform.gpu.name
    )
    return {
        "gpu_only_ms": serial,
        "naive_ms": naive,
        "haxconn_ms": hax,
        "gain_vs_serial_pct": (serial - hax) / serial * 100,
        "dsa_groups_used": float(dsa_groups),
    }


def run(
    platform_name: str = "orin",
    pair: tuple[str, str] = ("vgg19", "resnet152"),
    scales: Sequence[float] = DEFAULT_SCALES,
) -> list[dict[str, object]]:
    """Two sweeps: compute-only scaling vs compute+bandwidth scaling.

    The contrast is the study's point: more DSA FLOPs without more
    memory bandwidth raises the DSA's EMC pressure and can *hurt*
    concurrency, while scaling both together keeps paying off -- on a
    shared-memory SoC, bandwidth is the resource that gates
    co-scheduling.
    """
    base = get_platform(platform_name)
    rows: list[dict[str, object]] = []
    for mode in ("compute-only", "compute+bw"):
        for scale in scales:
            bw_scale = scale if mode == "compute+bw" else 1.0
            platform = scaled_dsa_platform(base, scale, bw_scale)
            point = run_point(platform, pair)
            rows.append(
                {"mode": mode, "dsa_scale": scale, **point}
            )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "mode",
            "dsa_scale",
            "gpu_only_ms",
            "naive_ms",
            "haxconn_ms",
            "gain_vs_serial_pct",
            "dsa_groups_used",
        ],
        title="DSA design space: concurrency payoff vs DSA capability",
    )


if __name__ == "__main__":
    print(format_results(run()))
