"""Table 2: execution/transition times of GoogleNet layer groups.

For each of the ~10 layer groups: GPU time, DLA time, the DLA/GPU
ratio (paper: varies 1.40x-2.02x -- the heterogeneous-affinity signal
HaX-CoNN exploits), transition times in both directions, and the
standalone memory throughput share.
"""

from __future__ import annotations

from repro.experiments.common import format_table, get_db
from repro.soc.platform import get_platform


def run(
    platform_name: str = "xavier",
    model: str = "googlenet",
    max_groups: int = 10,
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    profile = get_db(platform_name).profile(model, max_groups=max_groups)
    gpu = platform.gpu.name
    dsa = platform.dsa.name
    rows: list[dict[str, object]] = []
    for g in profile.groups:
        gpu_ms = g.time_s.get(gpu)
        dsa_ms = g.time_s.get(dsa)
        rows.append(
            {
                "group": g.label,
                "gpu_ms": None if gpu_ms is None else gpu_ms * 1e3,
                "dla_ms": None if dsa_ms is None else dsa_ms * 1e3,
                "ratio": (
                    dsa_ms / gpu_ms
                    if gpu_ms and dsa_ms is not None
                    else None
                ),
                "t_g_to_d_ms": (
                    sum(g.transition_s[(gpu, dsa)]) * 1e3
                    if (gpu, dsa) in g.transition_s
                    else None
                ),
                "t_d_to_g_ms": (
                    sum(g.transition_s[(dsa, gpu)]) * 1e3
                    if (dsa, gpu) in g.transition_s
                    else None
                ),
                "mem_thr_pct": g.emc_util.get(gpu, 0.0) * 100,
            }
        )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "group",
            "gpu_ms",
            "dla_ms",
            "ratio",
            "t_g_to_d_ms",
            "t_d_to_g_ms",
            "mem_thr_pct",
        ],
        title="Table 2: GoogleNet layer groups on Xavier AGX",
    )


if __name__ == "__main__":
    print(format_results(run()))
