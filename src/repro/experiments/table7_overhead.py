"""Table 7: overhead of running the solver during inference.

AlexNet executes on the DLA while another DNN runs on the GPU; the
solver occupies a CPU core and pulls a small amount of DRAM bandwidth.
The paper measures <= 2% slowdown on the DNN execution.  We model the
solver's memory footprint as a constant background bandwidth demand
(Z3's working set is small and cache-resident, so its DRAM traffic is
tiny) and compare co-run latency with and without it.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.baselines import naive_concurrent
from repro.core.workload import Workload
from repro.experiments.common import format_table, get_db
from repro.runtime.executor import run_schedule
from repro.soc.platform import get_platform

#: the paper's Table 7 co-runner set
DEFAULT_CORUNNERS = (
    "caffenet",
    "densenet",
    "googlenet",
    "inc-res-v2",
    "inception",
    "mobilenet",
    "resnet18",
    "resnet52",
    "resnet101",
    "resnet152",
    "vgg16",
    "vgg19",
)

#: DRAM traffic of the solver process on its CPU core; Z3-like solvers
#: are pointer-chasing and largely cache-resident, so ~1 GB/s is a
#: generous upper bound on an Orin-class memory system
SOLVER_BW = 1.0e9


def run(
    platform_name: str = "orin",
    corunners: Sequence[str] = DEFAULT_CORUNNERS,
    *,
    solver_bw: float = SOLVER_BW,
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    dsa = platform.dsa.name
    gpu = platform.gpu.name
    rows: list[dict[str, object]] = []
    for other in corunners:
        workload = Workload.concurrent("alexnet", other, objective="latency")
        # AlexNet on the DSA, the co-runner on the GPU
        result = naive_concurrent(
            workload, platform, db=db, orientation=(dsa, gpu)
        )
        base = run_schedule(result, platform)
        with_solver = run_schedule(
            result, platform, background_bw=solver_bw
        )
        overhead = (
            (with_solver.latency_ms - base.latency_ms)
            / base.latency_ms
            * 100
        )
        rows.append(
            {
                "corunner": other,
                "base_ms": base.latency_ms,
                "with_solver_ms": with_solver.latency_ms,
                "overhead_pct": overhead,
            }
        )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        ["corunner", "base_ms", "with_solver_ms", "overhead_pct"],
        title="Table 7: solver co-run overhead (AlexNet on DLA + DNN on GPU)",
    )


if __name__ == "__main__":
    print(format_results(run()))
