"""Fig. 5: Scenario 1 -- two instances of the same DNN, throughput.

Compares GPU-only, naive GPU & DLA, Mensa, and HaX-CoNN on NVIDIA
Orin for a set of DNNs.  Paper shape expectations:

* HaX-CoNN boosts FPS by up to ~29%,
* naive concurrent GPU & DLA does *not* always beat GPU-only
  (shared-memory contention),
* Mensa yields limited or no improvement (contention-blind greedy).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    SCHEDULER_LABELS,
    format_table,
    get_db,
    make_scheduler,
)
from repro.runtime.scenarios import scenario1_same_dnn
from repro.soc.platform import get_platform

DEFAULT_MODELS = (
    "googlenet",
    "resnet50",
    "resnet101",
    "inception",
    "vgg19",
)

SCHEDULERS = ("gpu_only", "naive", "mensa", "haxconn")


def run(
    platform_name: str = "orin",
    models: Sequence[str] = DEFAULT_MODELS,
    schedulers: Sequence[str] = SCHEDULERS,
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    rows: list[dict[str, object]] = []
    for model in models:
        row: dict[str, object] = {"model": model}
        for name in schedulers:
            scheduler = make_scheduler(name, platform, db=db)
            outcome = scenario1_same_dnn(model, scheduler, platform)
            row[f"{name}_fps"] = outcome.fps
        best_baseline = max(
            float(row[f"{name}_fps"])  # type: ignore[arg-type]
            for name in schedulers
            if name != "haxconn"
        )
        row["improvement_pct"] = (
            (float(row["haxconn_fps"]) - best_baseline)  # type: ignore[arg-type]
            / best_baseline
            * 100
        )
        rows.append(row)
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    columns = ["model"] + [f"{s}_fps" for s in SCHEDULERS] + [
        "improvement_pct"
    ]
    title = "Fig. 5: Scenario 1 throughput (2 instances, " + ", ".join(
        SCHEDULER_LABELS[s] for s in SCHEDULERS
    )
    return format_table(rows, columns, title=title + ")")


if __name__ == "__main__":
    print(format_results(run()))
