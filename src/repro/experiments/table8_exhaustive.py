"""Table 8: exhaustive all-pairs evaluation on AGX Orin.

Every DNN pair from the paper's ten-model set runs concurrently with
*iteration balancing*: the faster DNN iterates more often so both
streams finish around the same time (the multi-sensor multi-rate
setting the paper describes).  For each pair we report the
best-performing baseline (GPU-only serial, naive in both orientations,
Herald, H2H) and HaX-CoNN's speedup over it; pairs where HaX-CoNN
selects the GPU-only fallback print ``x``, matching the paper's
notation.

The paper's shape expectations:

* HaX-CoNN improves most pairs (paper: 35 of 45) and never loses,
* every GoogleNet pairing improves (GPU and DLA are closest there),
* VGG19 pairings mostly stay GPU-only (DLA far too slow on VGG19).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.core.baselines import gpu_only, h2h, herald, naive_concurrent
from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload, WorkloadDNN
from repro.experiments.common import format_table, get_db
from repro.runtime.executor import run_schedule
from repro.soc.platform import get_platform

#: the paper's Table 8 model set, in its row order
DEFAULT_MODELS = (
    "caffenet",
    "densenet",
    "googlenet",
    "inc-res-v2",
    "inception",
    "resnet18",
    "resnet52",
    "resnet101",
    "resnet152",
    "vgg19",
)

#: coarser settings keep the 45-pair sweep tractable; the paper's
#: optimal schedules all use a single transition per DNN
MAX_GROUPS = 8
MAX_TRANSITIONS = 1


def balanced_repeats(
    model1: str, model2: str, platform_name: str
) -> tuple[int, int]:
    """Iterate the faster DNN more often (paper Section 5.4)."""
    db = get_db(platform_name)
    platform = get_platform(platform_name)
    gpu = platform.gpu.name
    t1 = db.profile(model1, max_groups=MAX_GROUPS).total_time(gpu)
    t2 = db.profile(model2, max_groups=MAX_GROUPS).total_time(gpu)
    if t1 <= 0 or t2 <= 0:
        return 1, 1
    ratio = t1 / t2
    if ratio >= 1:
        return 1, max(1, min(4, round(ratio)))
    return max(1, min(4, round(1 / ratio))), 1


def run_pair(
    model1: str, model2: str, platform_name: str = "orin"
) -> dict[str, object]:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    r1, r2 = balanced_repeats(model1, model2, platform_name)
    second = WorkloadDNN.of(model2, repeats=r2)
    if model1 == model2 and r1 == r2:
        second = WorkloadDNN(models=(model2,), repeats=r2, instance=1)
    workload = Workload(
        dnns=(WorkloadDNN.of(model1, repeats=r1), second),
        objective="throughput",
    )
    kwargs = dict(db=db, max_groups=MAX_GROUPS)
    candidates = {
        "GPU": gpu_only(workload, platform, **kwargs),
        "G/D": naive_concurrent(workload, platform, **kwargs),
        "D/G": naive_concurrent(
            workload,
            platform,
            orientation=(platform.dsa.name, platform.gpu.name),
            **kwargs,
        ),
        "Her.": herald(
            workload, platform, max_transitions=MAX_TRANSITIONS, **kwargs
        ),
        "H2H": h2h(
            workload, platform, max_transitions=MAX_TRANSITIONS, **kwargs
        ),
    }
    measured = {
        label: run_schedule(result, platform).latency_ms
        for label, result in candidates.items()
    }
    best_label = min(measured, key=measured.__getitem__)

    scheduler = HaXCoNN(
        platform,
        db=db,
        max_groups=MAX_GROUPS,
        max_transitions=MAX_TRANSITIONS,
    )
    hax_result = scheduler.schedule(workload)
    hax_ms = run_schedule(hax_result, platform).latency_ms

    speedup = measured[best_label] / hax_ms if hax_ms > 0 else float("inf")
    fell_back = hax_result.schedule.serialized
    best_naive = min(measured["GPU"], measured["G/D"], measured["D/G"])
    return {
        "dnn1": model1,
        "dnn2": model2,
        "repeats": f"{r1}:{r2}",
        "best_baseline": best_label,
        "best_ms": measured[best_label],
        "haxconn_ms": hax_ms,
        "speedup": "x" if fell_back else round(speedup, 2),
        "speedup_value": 1.0 if fell_back else speedup,
        "speedup_vs_naive": (
            1.0 if fell_back else best_naive / hax_ms
        ),
        **{f"{label}_ms": ms for label, ms in measured.items()},
    }


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    platform_name: str = "orin",
) -> list[dict[str, object]]:
    rows = []
    for m1, m2 in itertools.combinations_with_replacement(models, 2):
        rows.append(run_pair(m1, m2, platform_name))
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "dnn1",
            "dnn2",
            "repeats",
            "best_baseline",
            "best_ms",
            "haxconn_ms",
            "speedup",
        ],
        title="Table 8: exhaustive DNN pairs on AGX Orin",
    )


if __name__ == "__main__":
    print(format_results(run()))
