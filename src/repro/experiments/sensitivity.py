"""Sensitivity analysis: how robust are the paper's conclusions?

The reproduction's substrate has three load-bearing parameters that no
datasheet pins down: the EMC arbitration loss under concurrency, the
sub-saturation interference coefficient, and the DSA's activation
traffic amplification.  This experiment sweeps each and re-measures
the headline comparison (HaX-CoNN vs. the naive baselines on the
paper's experiment-1 pair), answering: *does HaX-CoNN's advantage
survive across the plausible parameter range, or did we tune it into
existence?*
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.contention.pccs import calibrate_pccs
from repro.core.baselines import gpu_only, naive_concurrent
from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload
from repro.experiments.common import format_table
from repro.profiling.database import ProfileDB
from repro.runtime.executor import run_schedule
from repro.soc.platform import Platform, get_platform

#: parameter -> sweep values (the middle entry is the shipped default)
DEFAULT_SWEEPS: dict[str, tuple[float, ...]] = {
    "interference_coeff": (0.15, 0.30, 0.45, 0.60),
    "emc_capacity_2clients": (0.70, 0.78, 0.84, 0.92),
}


def _variant(platform: Platform, parameter: str, value: float) -> Platform:
    if parameter == "interference_coeff":
        return dataclasses.replace(platform, interference_coeff=value)
    if parameter == "emc_capacity_2clients":
        frac = list(platform.emc_capacity_frac)
        frac[1] = value
        return dataclasses.replace(
            platform, emc_capacity_frac=tuple(frac)
        )
    raise KeyError(f"unknown sweep parameter {parameter!r}")


def run_point(
    platform: Platform,
    pair: tuple[str, str] = ("vgg19", "resnet152"),
    *,
    max_groups: int = 8,
) -> dict[str, float]:
    """Measure HaX-CoNN vs naive baselines on one platform variant."""
    db = ProfileDB(platform)
    # the contention model must be re-fitted: the decoupled profiling
    # step would be re-run on the changed hardware
    db._pccs = calibrate_pccs(platform)
    workload = Workload.concurrent(*pair, objective="latency")
    scheduler = HaXCoNN(
        platform, db=db, max_groups=max_groups, max_transitions=1
    )
    hax = run_schedule(scheduler.schedule(workload), platform).latency_ms
    serial = run_schedule(
        gpu_only(workload, platform, db=db, max_groups=max_groups),
        platform,
    ).latency_ms
    naive = run_schedule(
        naive_concurrent(workload, platform, db=db, max_groups=max_groups),
        platform,
    ).latency_ms
    best = min(serial, naive)
    return {
        "haxconn_ms": hax,
        "gpu_only_ms": serial,
        "naive_ms": naive,
        "improvement_pct": (best - hax) / best * 100,
    }


def run(
    platform_name: str = "xavier",
    sweeps: dict[str, Sequence[float]] | None = None,
) -> list[dict[str, object]]:
    base = get_platform(platform_name)
    rows: list[dict[str, object]] = []
    for parameter, values in (sweeps or DEFAULT_SWEEPS).items():
        for value in values:
            platform = _variant(base, parameter, value)
            point = run_point(platform)
            rows.append(
                {"parameter": parameter, "value": value, **point}
            )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "parameter",
            "value",
            "gpu_only_ms",
            "naive_ms",
            "haxconn_ms",
            "improvement_pct",
        ],
        title="Sensitivity: HaX-CoNN advantage across substrate parameters",
    )


if __name__ == "__main__":
    print(format_results(run()))
