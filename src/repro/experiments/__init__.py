"""Regeneration of every table and figure in the paper's evaluation.

Each module exposes a ``run(...)`` function returning structured rows
plus a ``format_table(rows)`` helper; the pytest-benchmark harness in
``benchmarks/`` and the EXPERIMENTS.md generator both consume these.

=================  =================================================
module             paper artifact
=================  =================================================
fig1_case_study    Fig. 1  (serial / naive / HaX-CoNN case study)
table2_layer_groups Table 2 (GoogleNet layer-group profile)
fig3_emc_sweep     Fig. 3  (EMC utilization vs input/filter size)
fig4_intervals     Fig. 4  (contention-interval illustration)
table5_standalone  Table 5 (standalone runtimes, paper vs model)
fig5_scenario1     Fig. 5  (same-DNN throughput, 4 schedulers)
table6_scenarios   Table 6 (10 experiments, scenarios 2-4)
fig6_slowdown      Fig. 6  (GoogleNet slowdown under co-running DNNs)
fig7_dynamic       Fig. 7  (D-HaX-CoNN convergence)
table7_overhead    Table 7 (solver co-run overhead)
table8_exhaustive  Table 8 (all-pairs matrix on Orin)
ablations          design-choice ablation studies (DESIGN.md section 5)
serving            multi-tenant serving study (beyond the paper, §5b)
=================  =================================================
"""

from repro.experiments import common

__all__ = ["common"]
