"""Batching vs. concurrency study (Scenario 1 extension).

Two ways to double a camera pipeline's throughput on an SoC:

* **batch**: run one engine at batch 2 on the fastest DSA (amortizes
  weight traffic, raises GPU utilization, but doubles the per-frame
  latency floor and leaves the DLA idle), or
* **concurrency**: run two batch-1 instances co-scheduled across the
  DSAs -- the paper's Scenario 1.

For each DNN this experiment measures batch-N GPU throughput against
HaX-CoNN's N-instance co-schedule, per frame latency included -- the
trade a deployment engineer actually faces.
"""

from __future__ import annotations

from typing import Sequence

from repro.dnn import zoo
from repro.dnn.grouping import group_layers
from repro.experiments.common import format_table, get_db, make_scheduler
from repro.perf.model import group_cost
from repro.runtime.scenarios import scenario1_same_dnn
from repro.soc.platform import get_platform

DEFAULT_MODELS = ("googlenet", "resnet101", "inception")


def batched_gpu_latency_ms(
    model: str, platform_name: str, batch: int, *, max_groups: int = 12
) -> float:
    """Standalone batch-N latency on the GPU (one engine, no co-run)."""
    platform = get_platform(platform_name)
    graph = zoo.build(model)
    groups = group_layers(graph, max_groups=max_groups)
    total = 0.0
    for group in groups:
        total += group_cost(
            group, platform.gpu, platform, batch=batch
        ).time_s
    return total * 1e3


def run(
    platform_name: str = "orin",
    models: Sequence[str] = DEFAULT_MODELS,
    *,
    batch: int = 2,
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    rows: list[dict[str, object]] = []
    for model in models:
        batched_ms = batched_gpu_latency_ms(model, platform_name, batch)
        batched_fps = batch * 1e3 / batched_ms
        scheduler = make_scheduler("haxconn", platform, db=db)
        concurrent = scenario1_same_dnn(
            model, scheduler, platform, instances=batch
        )
        rows.append(
            {
                "model": model,
                "batched_gpu_fps": batched_fps,
                "batched_latency_ms": batched_ms,
                "concurrent_fps": concurrent.fps,
                "concurrent_latency_ms": concurrent.latency_ms,
                "winner": (
                    "batch"
                    if batched_fps > concurrent.fps
                    else "concurrency"
                ),
            }
        )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "model",
            "batched_gpu_fps",
            "batched_latency_ms",
            "concurrent_fps",
            "concurrent_latency_ms",
            "winner",
        ],
        title="Batching vs concurrency (batch-2 GPU vs 2-instance HaX-CoNN)",
    )


if __name__ == "__main__":
    print(format_results(run()))
