"""Ablations of the design choices DESIGN.md calls out.

1. **Contention model** -- the same optimal solver with (a) the fitted
   PCCS surface, (b) the analytic oracle, (c) no contention model.
   Isolates the paper's central claim from solver quality.
2. **Transition-cost modeling** on/off (the Herald-vs-H2H axis) in the
   same solver.
3. **Decoupled PCCS accuracy** -- PCCS-vs-oracle slowdown error across
   the query space (the cost of avoiding pairwise profiling).
4. **Resource-constrained timeline** on/off -- the chain-sum timeline
   of Eq. 4 plus Eq. 9 versus the queue-aware timeline the runtime
   actually exhibits.
5. **Anytime value ordering** -- bound-ordered versus unordered
   branch-and-bound: time/nodes to first incumbent within 5% of the
   optimum.
"""

from __future__ import annotations

import numpy as np

from repro.contention import AnalyticShareModel, NoContentionModel
from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload
from repro.experiments.common import format_table, get_db
from repro.runtime.executor import run_schedule
from repro.soc.platform import get_platform

DEFAULT_WORKLOAD = ("vgg19", "resnet152")


def contention_model_ablation(
    platform_name: str = "xavier",
    pair: tuple[str, str] = DEFAULT_WORKLOAD,
) -> list[dict[str, object]]:
    """Ablation 1+4: same solver, different cost-model ingredients."""
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    workload = Workload.concurrent(*pair, objective="latency")
    variants = {
        "pccs": {},
        "oracle": {"contention_model": AnalyticShareModel(platform)},
        "no-contention": {"contention_model": NoContentionModel()},
        "no-transitions": {"include_transitions": False},
        "chain-timeline": {"resource_constrained": False},
    }
    rows: list[dict[str, object]] = []
    for label, overrides in variants.items():
        scheduler = HaXCoNN(platform, db=db, **overrides)  # type: ignore[arg-type]
        result = scheduler.schedule(workload)
        execution = run_schedule(result, platform)
        rows.append(
            {
                "variant": label,
                "predicted_ms": result.predicted.makespan * 1e3,
                "measured_ms": execution.latency_ms,
                "misprediction_pct": abs(
                    result.predicted.makespan * 1e3 - execution.latency_ms
                )
                / execution.latency_ms
                * 100,
            }
        )
    return rows


def pccs_accuracy_ablation(
    platform_name: str = "xavier", grid: int = 12
) -> dict[str, float]:
    """Ablation 3: decoupled PCCS vs the analytic oracle."""
    platform = get_platform(platform_name)
    pccs = get_db(platform_name).pccs
    oracle = AnalyticShareModel(platform)
    bw = platform.dram_bandwidth
    errs = []
    for own in np.linspace(0.05, 0.9, grid):
        for ext in np.linspace(0.05, 0.9, grid):
            p = pccs.slowdown(own * bw, [ext * bw])
            o = oracle.slowdown(own * bw, [ext * bw])
            errs.append(abs(p - o) / o)
    return {
        "mean_rel_err": float(np.mean(errs)),
        "max_rel_err": float(np.max(errs)),
        "profiling_points": float(len(pccs.own_grid) ** 2),
    }


def solver_anytime_ablation(
    platform_name: str = "xavier",
    pair: tuple[str, str] = DEFAULT_WORKLOAD,
) -> list[dict[str, object]]:
    """Ablation 5: bound-ordered vs unordered branching."""
    from repro.solver.bnb import BranchAndBound
    from repro.solver.problem import Problem

    platform = get_platform(platform_name)
    db = get_db(platform_name)
    workload = Workload.concurrent(*pair, objective="latency")
    scheduler = HaXCoNN(platform, db=db)
    formulation, _ = scheduler.build_formulation(workload)
    problem = scheduler.build_problem(workload, formulation)
    unordered = Problem(
        variables=problem.variables,
        objective=problem.objective,
        constraints=problem.constraints,
        lower_bound=None,
    )
    rows: list[dict[str, object]] = []
    for label, prob in (("bound-ordered", problem), ("unordered", unordered)):
        result = BranchAndBound().solve(prob)
        optimum = result.best.objective if result.best else float("nan")
        within = [
            i
            for i in result.incumbents
            if i.objective <= optimum * 1.05
        ]
        rows.append(
            {
                "variant": label,
                "nodes": result.nodes_explored,
                "wall_s": result.wall_time_s,
                "first_good_s": within[0].wall_time_s if within else None,
                "optimum_obj": optimum,
            }
        )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        sorted({k for r in rows for k in r}),
        title="Ablation results",
    )


if __name__ == "__main__":
    print(format_results(contention_model_ablation()))
    print()
    print(pccs_accuracy_ablation())
    print()
    print(format_results(solver_anytime_ablation()))
