"""Fig. 1: three ways of running VGG-19 + ResNet-101 on Xavier AGX.

Case 1 -- serial execution on the GPU (paper: 11.3 ms cumulative),
Case 2 -- naive concurrent GPU & DLA (paper: 10.6 ms, only a slight
improvement because the DLA lags and the two contend for memory),
Case 3 -- HaX-CoNN's layer-level split (paper: clearly faster, with
one transition per DNN).
"""

from __future__ import annotations

from repro.core.workload import Workload
from repro.experiments.common import format_table, get_db, make_scheduler
from repro.runtime.executor import run_schedule
from repro.soc.platform import get_platform


def run(platform_name: str = "xavier") -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    workload = Workload.concurrent("vgg19", "resnet101", objective="latency")
    rows: list[dict[str, object]] = []
    cases = [
        ("Case 1: serial GPU", "gpu_only"),
        ("Case 2: naive GPU & DLA", "naive"),
        ("Case 3: HaX-CoNN split", "haxconn"),
    ]
    for label, scheduler_name in cases:
        scheduler = make_scheduler(scheduler_name, platform, db=db)
        result = scheduler(workload)
        execution = run_schedule(result, platform)
        rows.append(
            {
                "case": label,
                "latency_ms": execution.latency_ms,
                "transitions": result.schedule.total_transitions,
                "schedule": " | ".join(
                    s.describe() for s in result.schedule
                ),
            }
        )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        ["case", "latency_ms", "transitions", "schedule"],
        title="Fig. 1 case study: VGG-19 + ResNet-101 on Xavier AGX",
    )


if __name__ == "__main__":
    print(format_results(run()))
