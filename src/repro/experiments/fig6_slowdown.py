"""Fig. 6: slowdown of GoogleNet-on-GPU under co-running DNNs-on-DLA.

For each co-runner, measures GoogleNet's contention slowdown relative
to its standalone GPU execution, (a) under the naive whole-network
GPU/DLA mapping and (b) under the HaX-CoNN schedule.  Paper claim:
HaX-CoNN cuts the shared-memory contention slowdown in every pairing
(abstract: "minimizes memory contention by up to 45%").
"""

from __future__ import annotations

from typing import Sequence

from repro.core.workload import Workload
from repro.experiments.common import format_table, get_db, make_scheduler
from repro.runtime.executor import run_schedule
from repro.soc.platform import get_platform

DEFAULT_CORUNNERS = (
    "caffenet",
    "resnet18",
    "resnet50",
    "resnet101",
    "resnet152",
    "inception",
    "vgg19",
)


def run(
    platform_name: str = "xavier",
    target: str = "googlenet",
    corunners: Sequence[str] = DEFAULT_CORUNNERS,
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    rows: list[dict[str, object]] = []
    for other in corunners:
        workload = Workload.concurrent(target, other, objective="latency")
        row: dict[str, object] = {"corunner": other}
        for name in ("naive", "haxconn"):
            scheduler = make_scheduler(name, platform, db=db)
            result = scheduler(workload)
            execution = run_schedule(result, platform)
            row[f"{name}_slowdown"] = execution.stream_slowdown(0)
        naive_s = float(row["naive_slowdown"])  # type: ignore[arg-type]
        hax_s = float(row["haxconn_slowdown"])  # type: ignore[arg-type]
        row["contention_reduction_pct"] = (
            (naive_s - hax_s) / max(naive_s - 1.0, 1e-9) * 100
            if naive_s > 1.0
            else 0.0
        )
        rows.append(row)
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        ["corunner", "naive_slowdown", "haxconn_slowdown", "contention_reduction_pct"],
        title="Fig. 6: GoogleNet-on-GPU slowdown vs co-runner-on-DLA",
    )


if __name__ == "__main__":
    print(format_results(run()))
