"""Shared infrastructure for the experiment suite."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.baselines import gpu_only, h2h, herald, mensa, naive_concurrent
from repro.core.haxconn import HaXCoNN, ScheduleResult
from repro.core.workload import Workload
from repro.profiling.database import ProfileDB
from repro.soc.platform import Platform, get_platform

#: environment variable naming a directory of persisted profile
#: databases (``<platform>_profiles.json`` files); see :func:`get_db`
PROFILE_STORE_ENV = "REPRO_PROFILE_STORE"

#: display names matching the paper's column headers
SCHEDULER_LABELS = {
    "gpu_only": "GPU only",
    "naive": "GPU & DSA",
    "mensa": "Mensa",
    "herald": "Herald",
    "h2h": "H2H",
    "haxconn": "HaX-CoNN",
}


#: per-platform databases handed out by :func:`get_db` this process
_DBS: dict[str, ProfileDB] = {}


def profile_store_path(platform_name: str) -> Path | None:
    """Where ``platform_name``'s profiles persist, or None when the
    ``REPRO_PROFILE_STORE`` directory is not configured."""
    root = os.environ.get(PROFILE_STORE_ENV)
    if not root:
        return None
    return Path(root) / f"{platform_name}_profiles.json"


def get_db(platform_name: str) -> ProfileDB:
    """One shared profile database per platform (profiling is offline
    and happens once, as in the paper).

    When the ``REPRO_PROFILE_STORE`` environment variable names a
    directory, a previously persisted database is loaded from
    ``<dir>/<platform>_profiles.json`` instead of re-deriving profiles
    from scratch -- the on-disk analogue of the paper's profile-once
    workflow, shared by the benchmark and experiment runs.  A missing
    or stale file falls back to a fresh database (the store is a
    cache, never a correctness dependency); call
    :func:`persist_profile_stores` to write the current databases
    back.
    """
    db = _DBS.get(platform_name)
    if db is not None:
        return db
    path = profile_store_path(platform_name)
    if path is not None and path.exists():
        try:
            db = ProfileDB.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            # corrupt / schema-drifted store file: profile afresh
            db = ProfileDB(get_platform(platform_name))
    else:
        db = ProfileDB(get_platform(platform_name))
    _DBS[platform_name] = db
    return db


def persist_profile_stores() -> list[Path]:
    """Write every database :func:`get_db` handed out back to the
    profile store; returns the written paths (empty when the store
    directory is not configured)."""
    written: list[Path] = []
    for name in sorted(_DBS):
        path = profile_store_path(name)
        if path is None:
            continue
        path.parent.mkdir(parents=True, exist_ok=True)
        _DBS[name].save(path)
        written.append(path)
    return written


def make_scheduler(
    name: str,
    platform: Platform,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
    max_transitions: int = 2,
) -> Callable[[Workload], ScheduleResult]:
    """Scheduler callable by paper name."""
    db = db if db is not None else get_db(platform.name)
    if name == "haxconn":
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
        )
        return scheduler.schedule
    if name == "gpu_only":
        return lambda w: gpu_only(w, platform, db=db, max_groups=max_groups)
    if name == "naive":
        return lambda w: naive_concurrent(
            w, platform, db=db, max_groups=max_groups
        )
    if name == "mensa":
        return lambda w: mensa(w, platform, db=db, max_groups=max_groups)
    if name == "herald":
        return lambda w: herald(w, platform, db=db, max_groups=max_groups)
    if name == "h2h":
        return lambda w: h2h(w, platform, db=db, max_groups=max_groups)
    raise KeyError(f"unknown scheduler {name!r}")


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width text table (the benches print these)."""
    rows = list(rows)
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            "  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
