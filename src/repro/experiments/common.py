"""Shared infrastructure for the experiment suite."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.baselines import gpu_only, h2h, herald, mensa, naive_concurrent
from repro.core.haxconn import HaXCoNN, ScheduleResult
from repro.core.workload import Workload
from repro.profiling.database import ProfileDB
from repro.soc.platform import Platform, get_platform

#: display names matching the paper's column headers
SCHEDULER_LABELS = {
    "gpu_only": "GPU only",
    "naive": "GPU & DSA",
    "mensa": "Mensa",
    "herald": "Herald",
    "h2h": "H2H",
    "haxconn": "HaX-CoNN",
}


@lru_cache(maxsize=None)
def get_db(platform_name: str) -> ProfileDB:
    """One shared profile database per platform (profiling is offline
    and happens once, as in the paper)."""
    return ProfileDB(get_platform(platform_name))


def make_scheduler(
    name: str,
    platform: Platform,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
    max_transitions: int = 2,
) -> Callable[[Workload], ScheduleResult]:
    """Scheduler callable by paper name."""
    db = db if db is not None else get_db(platform.name)
    if name == "haxconn":
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
        )
        return scheduler.schedule
    if name == "gpu_only":
        return lambda w: gpu_only(w, platform, db=db, max_groups=max_groups)
    if name == "naive":
        return lambda w: naive_concurrent(
            w, platform, db=db, max_groups=max_groups
        )
    if name == "mensa":
        return lambda w: mensa(w, platform, db=db, max_groups=max_groups)
    if name == "herald":
        return lambda w: herald(w, platform, db=db, max_groups=max_groups)
    if name == "h2h":
        return lambda w: h2h(w, platform, db=db, max_groups=max_groups)
    raise KeyError(f"unknown scheduler {name!r}")


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width text table (the benches print these)."""
    rows = list(rows)
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            "  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
