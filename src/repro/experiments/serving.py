"""Serving study: cache-plus-anytime vs static policies on a changing
tenant mix.

A three-tenant deployment whose active mix changes mid-run (a detection
tenant hands over to a segmentation tenant while a camera-classification
tenant runs throughout) is served under three policies:

- ``gpu_only``  -- every round serialized on the GPU,
- ``naive``     -- contention-oblivious fixed GPU & DSA mapping,
- ``haxconn``   -- :class:`~repro.serve.policy.CachedAnytimePolicy`:
  schedule-cache toggles for known mixes, D-HaX-CoNN anytime solving
  (naive start, incumbent swaps) for novel ones.

All latency numbers are measured by executing rounds on the simulator;
the policies only ever see decoupled profiles and predictions.
"""

from __future__ import annotations

from typing import Callable

from repro.core.haxconn import HaXCoNN
from repro.core.solve_store import SolveStore
from repro.experiments.common import format_table, get_db
from repro.serve.fleet import Fleet, ShardedFleetReport
from repro.serve.policy import (
    CachedAnytimePolicy,
    ServingPolicy,
    gpu_only_policy,
    naive_policy,
)
from repro.serve.requests import (
    PeriodicArrivals,
    PoissonArrivals,
    Tenant,
    TraceArrivals,
)
from repro.serve.server import Server
from repro.soc.platform import get_platform

POLICIES = ("gpu_only", "naive", "haxconn")


def windowed(
    rate_hz: float, start_s: float, end_s: float, *, seed: int = 0
) -> TraceArrivals:
    """Periodic arrivals confined to ``[start_s, end_s)`` -- the trace
    form of a tenant that joins and later leaves the fleet."""
    times = PeriodicArrivals(rate_hz, seed=seed).times_within(
        end_s - start_s, start=start_s
    )
    return TraceArrivals(tuple(times))


def default_tenants(horizon_s: float) -> list[Tenant]:
    """The changing mix: cam runs throughout; det hands over to seg.

    Rates sit near the serialized-GPU capacity of the two-tenant
    mixes, the regime where scheduling policy decides whether queues
    drain or build -- a lightly-loaded server makes every policy look
    identical because rounds degenerate to single-tenant mixes.
    """
    half = horizon_s / 2
    return [
        Tenant.of(
            "cam",
            "googlenet",
            arrivals=PoissonArrivals(120.0, seed=11),
            slo_s=0.030,
        ),
        Tenant.of(
            "det",
            "vgg19",
            arrivals=windowed(70.0, 0.0, half, seed=12),
            slo_s=0.040,
        ),
        Tenant.of(
            "seg",
            "resnet152",
            arrivals=windowed(70.0, half, horizon_s, seed=13),
            slo_s=0.040,
        ),
    ]


def make_policy(
    name: str,
    platform_name: str,
    *,
    max_groups: int | None,
    max_transitions: int,
) -> ServingPolicy:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    if name == "gpu_only":
        return gpu_only_policy(platform, db=db, max_groups=max_groups)
    if name == "naive":
        return naive_policy(platform, db=db, max_groups=max_groups)
    if name == "haxconn":
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
        )
        return CachedAnytimePolicy(scheduler)
    raise KeyError(f"unknown serving policy {name!r}")


def run(
    platform_name: str = "xavier",
    *,
    horizon_s: float = 0.5,
    max_groups: int | None = 8,
    max_transitions: int = 1,
    max_batch: int = 2,
    policies: tuple[str, ...] = POLICIES,
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    rows: list[dict[str, object]] = []
    for name in policies:
        policy = make_policy(
            name,
            platform_name,
            max_groups=max_groups,
            max_transitions=max_transitions,
        )
        server = Server(
            platform,
            default_tenants(horizon_s),
            policy,
            max_batch=max_batch,
        )
        report = server.run(horizon_s=horizon_s)
        stats = policy.stats()
        eval_stats = getattr(policy, "eval_stats", dict)()
        util = report.utilization()
        rows.append(
            {
                "policy": name,
                "served": len(report.served),
                "shed": len(report.rejected),
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "miss_%": report.miss_rate * 100.0,
                "goodput_rps": report.goodput_rps,
                "rounds": len(report.rounds),
                "solves": stats.get("solves", 0),
                "cache_hits": stats.get("cache_hits", 0),
                "swaps": stats.get("swaps", 0),
                "memo_hit_%": 100.0 * eval_stats.get("memo_hit_rate", 0.0),
                "fp_iter": eval_stats.get("fp_iter_mean", 0.0),
                "gpu_util_%": util.get(platform.gpu.name, 0.0) * 100.0,
            }
        )
    return rows


# -- the sharded fleet scenario ---------------------------------------

#: update points matched to serving-round phase time (milliseconds of
#: phase per round), so anytime phases converge within a short run
FLEET_UPDATE_POINTS = (0.002, 0.005, 0.01, 0.02, 0.05)


def fleet_tenants(*, rate_hz: float = 300.0, slo_s: float = 0.5) -> list[Tenant]:
    """Four heavy single-model tenants under sustained backlog.

    The regime where sharding pays on a single machine: one shard must
    co-schedule the joint four-stream mix (an expensive solve), while a
    four-shard fleet solves four cheap single-stream mixes.
    """
    models = ("resnet50", "vgg16", "googlenet", "resnet18")
    return [
        Tenant.of(
            f"t{k}-{model}",
            model,
            arrivals=PoissonArrivals(rate_hz, seed=100 + k),
            slo_s=slo_s,
        )
        for k, model in enumerate(models)
    ]


def make_fleet_policy_factory(
    platform_name: str,
    *,
    max_groups: int | None = 8,
    max_transitions: int = 2,
    node_budget: int = 1500,
) -> Callable[[int], ServingPolicy]:
    """Per-shard policy factory for a deterministic fleet.

    The scheduler runs the portfolio under its ``nodes`` clock so
    incumbents carry virtual timestamps -- the fleet's cross-backend
    byte-identity needs swap decisions that do not depend on wall
    time.  The factory is called inside each worker (fork / thread /
    serial), which all inherit the one shared profile database.
    """
    platform = get_platform(platform_name)
    db = get_db(platform_name)

    def factory(shard_id: int) -> ServingPolicy:
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
            solver="portfolio",
            solver_workers=2,
            solver_backend="serial",
            solver_clock="nodes",
            node_budget=node_budget,
        )
        return CachedAnytimePolicy(
            scheduler, update_points=FLEET_UPDATE_POINTS
        )

    return factory


def run_fleet(
    platform_name: str = "xavier",
    *,
    horizon_s: float = 0.12,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    backend: str = "auto",
    store: SolveStore | None = None,
    sync_rounds: int = 4,
) -> list[dict[str, object]]:
    """Fleet scaling rows: the same tenant population served by
    1..N shards, sharing solves through gossip and ``store``."""
    platform = get_platform(platform_name)
    factory = make_fleet_policy_factory(platform_name)
    rows: list[dict[str, object]] = []
    for shards in shard_counts:
        fleet = Fleet(
            platform,
            fleet_tenants(),
            factory,
            shards=shards,
            backend=backend,
            router="balanced",
            sync_rounds=sync_rounds,
            store=store,
        )
        rows.append(fleet_row(fleet.run(horizon_s=horizon_s)))
    return rows


def fleet_row(report: ShardedFleetReport) -> dict[str, object]:
    """One fleet run as a summary-table row (the ``haxconn serve``
    fleet columns)."""
    ttf = report.time_to_first_hax_s()
    return {
        "shards": report.shards,
        "backend": report.backend,
        "served": report.served,
        "shed": report.shed,
        "p50_ms": report.p50_ms if report.served else None,
        "p99_ms": report.p99_ms if report.served else None,
        "rounds": report.rounds,
        "solves": report.solves,
        "store_hits": report.store_hits,
        "wall_ms": report.wall_s * 1e3,
        "tput_rps": report.throughput_rps,
        "ttf_hax_ms": None if ttf is None else ttf * 1e3,
    }


FLEET_COLUMNS = (
    "shards",
    "backend",
    "served",
    "shed",
    "p50_ms",
    "p99_ms",
    "rounds",
    "solves",
    "store_hits",
    "wall_ms",
    "tput_rps",
    "ttf_hax_ms",
)


def format_fleet_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        list(FLEET_COLUMNS),
        title="Serving fleet: shard scaling on one machine "
        "(shared solve store + epoch gossip)",
    )


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "policy",
            "served",
            "shed",
            "p50_ms",
            "p99_ms",
            "miss_%",
            "goodput_rps",
            "rounds",
            "solves",
            "cache_hits",
            "swaps",
            "memo_hit_%",
            "fp_iter",
            "gpu_util_%",
        ],
        title="Serving: cache+anytime vs static policies on a "
        "changing tenant mix",
    )


if __name__ == "__main__":
    print(format_results(run()))
    print()
    print(format_fleet_results(run_fleet()))
