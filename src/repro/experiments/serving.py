"""Serving study: cache-plus-anytime vs static policies on a changing
tenant mix.

A three-tenant deployment whose active mix changes mid-run (a detection
tenant hands over to a segmentation tenant while a camera-classification
tenant runs throughout) is served under four policies:

- ``gpu_only``  -- every round serialized on the GPU,
- ``naive``     -- contention-oblivious fixed GPU & DSA mapping,
- ``haxconn``   -- :class:`~repro.serve.policy.CachedAnytimePolicy`:
  schedule-cache toggles for known mixes, D-HaX-CoNN anytime solving
  (naive start, incumbent swaps) for novel ones,
- ``moca``      -- :class:`~repro.serve.policy.DynamicThrottlePolicy`:
  the MoCA-style runtime baseline -- naive static mappings plus a
  dispatch-time throttle that defers the most memory-aggressive tenant
  whenever the PCCS model predicts the mix overcommits bandwidth.

All latency numbers are measured by executing rounds on the simulator;
the policies only ever see decoupled profiles and predictions.
"""

from __future__ import annotations

from typing import Callable

from repro.core.haxconn import HaXCoNN
from repro.core.solve_store import SolveStore
from repro.runtime import metrics
from repro.serve.slo import AdmissionConfig, TierConfig
from repro.experiments.common import format_table, get_db
from repro.serve.fleet import Fleet, ShardedFleetReport
from repro.serve.policy import (
    CachedAnytimePolicy,
    DynamicThrottlePolicy,
    ServingPolicy,
    gpu_only_policy,
    naive_policy,
)
from repro.serve.requests import (
    DiurnalArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    Tenant,
    TraceArrivals,
)
from repro.serve.server import Server
from repro.soc.platform import get_platform

POLICIES = ("gpu_only", "naive", "haxconn", "moca")


def windowed(
    rate_hz: float, start_s: float, end_s: float, *, seed: int = 0
) -> TraceArrivals:
    """Periodic arrivals confined to ``[start_s, end_s)`` -- the trace
    form of a tenant that joins and later leaves the fleet."""
    times = PeriodicArrivals(rate_hz, seed=seed).times_within(
        end_s - start_s, start=start_s
    )
    return TraceArrivals(tuple(times))


def default_tenants(horizon_s: float) -> list[Tenant]:
    """The changing mix: cam runs throughout; det hands over to seg.

    Rates sit near the serialized-GPU capacity of the two-tenant
    mixes, the regime where scheduling policy decides whether queues
    drain or build -- a lightly-loaded server makes every policy look
    identical because rounds degenerate to single-tenant mixes.
    """
    half = horizon_s / 2
    return [
        Tenant.of(
            "cam",
            "googlenet",
            arrivals=PoissonArrivals(120.0, seed=11),
            slo_s=0.030,
        ),
        Tenant.of(
            "det",
            "vgg19",
            arrivals=windowed(70.0, 0.0, half, seed=12),
            slo_s=0.040,
        ),
        Tenant.of(
            "seg",
            "resnet152",
            arrivals=windowed(70.0, half, horizon_s, seed=13),
            slo_s=0.040,
        ),
    ]


def make_policy(
    name: str,
    platform_name: str,
    *,
    max_groups: int | None,
    max_transitions: int,
) -> ServingPolicy:
    platform = get_platform(platform_name)
    db = get_db(platform_name)
    if name == "gpu_only":
        return gpu_only_policy(platform, db=db, max_groups=max_groups)
    if name == "naive":
        return naive_policy(platform, db=db, max_groups=max_groups)
    if name == "haxconn":
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
        )
        return CachedAnytimePolicy(scheduler)
    if name == "moca":
        return DynamicThrottlePolicy(
            platform, db=db, max_groups=max_groups
        )
    raise KeyError(f"unknown serving policy {name!r}")


def run(
    platform_name: str = "xavier",
    *,
    horizon_s: float = 0.5,
    max_groups: int | None = 8,
    max_transitions: int = 1,
    max_batch: int = 2,
    policies: tuple[str, ...] = POLICIES,
    admission: AdmissionConfig | None = None,
    batching: str = "tenant",
) -> list[dict[str, object]]:
    platform = get_platform(platform_name)
    rows: list[dict[str, object]] = []
    for name in policies:
        policy = make_policy(
            name,
            platform_name,
            max_groups=max_groups,
            max_transitions=max_transitions,
        )
        server = Server(
            platform,
            default_tenants(horizon_s),
            policy,
            max_batch=max_batch,
            admission=admission,
            batching=batching,
        )
        session = server.session(horizon_s=horizon_s)
        session.run_rounds()
        report = session.report()
        stats = policy.stats()
        eval_stats = getattr(policy, "eval_stats", dict)()
        util = report.utilization()
        n_rounds = len(report.rounds)
        admitted = (report.admission_stats or {}).get(
            "admitted", len(report.served)
        )
        rows.append(
            {
                "policy": name,
                "served": len(report.served),
                "admitted": admitted,
                "shed": len(report.rejected),
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "miss_%": report.miss_rate * 100.0,
                "goodput_rps": report.goodput_rps,
                "rounds": n_rounds,
                "idle_ms_per_round": metrics.per_round_ms(
                    session.virtual_idle_s, n_rounds
                ),
                "solves": stats.get("solves", 0),
                "cache_hits": stats.get("cache_hits", 0),
                "swaps": stats.get("swaps", 0),
                "memo_hit_%": 100.0 * eval_stats.get("memo_hit_rate", 0.0),
                "fp_iter": eval_stats.get("fp_iter_mean", 0.0),
                "throttled": stats.get("throttled", 0),
                "gpu_util_%": util.get(platform.gpu.name, 0.0) * 100.0,
            }
        )
    return rows


# -- the sharded fleet scenario ---------------------------------------

#: update points matched to serving-round phase time (milliseconds of
#: phase per round), so anytime phases converge within a short run
FLEET_UPDATE_POINTS = (0.002, 0.005, 0.01, 0.02, 0.05)


def fleet_tenants(*, rate_hz: float = 300.0, slo_s: float = 0.5) -> list[Tenant]:
    """Four heavy single-model tenants under sustained backlog.

    The regime where sharding pays on a single machine: one shard must
    co-schedule the joint four-stream mix (an expensive solve), while a
    four-shard fleet solves four cheap single-stream mixes.
    """
    models = ("resnet50", "vgg16", "googlenet", "resnet18")
    return [
        Tenant.of(
            f"t{k}-{model}",
            model,
            arrivals=PoissonArrivals(rate_hz, seed=100 + k),
            slo_s=slo_s,
        )
        for k, model in enumerate(models)
    ]


def make_fleet_policy_factory(
    platform_name: str,
    *,
    max_groups: int | None = 8,
    max_transitions: int = 2,
    node_budget: int = 1500,
) -> Callable[[int], ServingPolicy]:
    """Per-shard policy factory for a deterministic fleet.

    The scheduler runs the portfolio under its ``nodes`` clock so
    incumbents carry virtual timestamps -- the fleet's cross-backend
    byte-identity needs swap decisions that do not depend on wall
    time.  The factory is called inside each worker (fork / thread /
    serial), which all inherit the one shared profile database.
    """
    platform = get_platform(platform_name)
    db = get_db(platform_name)

    def factory(shard_id: int) -> ServingPolicy:
        scheduler = HaXCoNN(
            platform,
            db=db,
            max_groups=max_groups,
            max_transitions=max_transitions,
            solver="portfolio",
            solver_workers=2,
            solver_backend="serial",
            solver_clock="nodes",
            node_budget=node_budget,
        )
        return CachedAnytimePolicy(
            scheduler, update_points=FLEET_UPDATE_POINTS
        )

    return factory


def run_fleet(
    platform_name: str = "xavier",
    *,
    horizon_s: float = 0.12,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    backend: str = "auto",
    store: SolveStore | None = None,
    sync_rounds: int = 4,
) -> list[dict[str, object]]:
    """Fleet scaling rows: the same tenant population served by
    1..N shards, sharing solves through gossip and ``store``."""
    platform = get_platform(platform_name)
    factory = make_fleet_policy_factory(platform_name)
    rows: list[dict[str, object]] = []
    for shards in shard_counts:
        fleet = Fleet(
            platform,
            fleet_tenants(),
            factory,
            shards=shards,
            backend=backend,
            router="balanced",
            sync_rounds=sync_rounds,
            store=store,
        )
        rows.append(fleet_row(fleet.run(horizon_s=horizon_s)))
    return rows


# -- the pipelined (bounded-lag) fleet scenario -----------------------

#: per-shard base streams, pairwise-distinct as model multisets: every
#: mix signature a shard can form (base solo, joiner solo, base+joiner)
#: is unique fleet-wide, so gossip is inert and a lockstep run does
#: byte-identical solve work to a pipelined one -- the two differ only
#: in barrier stalls, which is exactly what the pipeline gate measures
PIPELINE_BASE_MODELS: tuple[tuple[str, ...], ...] = (
    ("alexnet",),
    ("caffenet",),
    ("densenet121",),
    ("fcn_resnet18",),
    ("googlenet",),
    ("inception_resnet_v2",),
    ("inception_v4",),
    ("mobilenet_v1",),
    ("resnet101",),
    ("resnet152",),
    ("resnet18",),
    ("resnet50",),
    ("vgg16",),
    ("vgg19",),
    ("vit_tiny",),
    ("alexnet", "resnet18"),
)

#: second model chained into every joiner stream (the joiner mix stays
#: signature-unique because its first model is the shard's base model)
PIPELINE_JOINER_MODEL = "resnet50"
PIPELINE_SYNC_ROUNDS = 2


def pipeline_tenants(
    shards: int = 16,
    *,
    sync_rounds: int = PIPELINE_SYNC_ROUNDS,
    lead_epochs: int = 2,
    spacing_epochs: int = 2,
    tail: int = 3,
    rate_hz: float = 5.0,
) -> tuple[list[Tenant], dict[str, int]]:
    """Staggered-solve diurnal workload for the bounded-lag gate.

    Shard ``k`` serves a diurnal base tenant plus a one-request
    "joiner" tenant whose arrival coincides with base arrival
    ``sync_rounds * (lead_epochs + spacing_epochs * k)`` -- so each
    shard hits its one expensive two-stream solve at a *distinct*
    local gossip epoch, roughly ``lead_epochs + spacing_epochs * k``.
    Under the lockstep barrier every shard stalls through every peer's
    solve that lands before its own exit; under bounded lag a shard
    only stalls when it would run more than ``max_lag`` epochs ahead
    of the slowest alive peer.  Finite traces make shards finish (and
    stop gating peers) shortly after their solve.

    Returns the tenant list plus the pinned tenant->shard placement.
    """
    if not 1 <= shards <= len(PIPELINE_BASE_MODELS):
        raise ValueError(
            f"shards must be in [1, {len(PIPELINE_BASE_MODELS)}]"
        )
    tenants: list[Tenant] = []
    pinned: dict[str, int] = {}
    for k in range(shards):
        join_at = sync_rounds * (lead_epochs + spacing_epochs * k)
        times = DiurnalArrivals(
            rate_hz,
            amplitude=0.5,
            period_s=4.0,
            seed=1000 + 17 * k,
        ).times(join_at + tail + 1)
        base = Tenant.of(
            f"b{k:02d}",
            *PIPELINE_BASE_MODELS[k],
            arrivals=TraceArrivals(times),
            slo_s=0.5,
            priority=1,
        )
        joiner = Tenant.of(
            f"j{k:02d}",
            PIPELINE_BASE_MODELS[k][0],
            PIPELINE_JOINER_MODEL,
            arrivals=TraceArrivals((times[join_at],)),
            slo_s=0.5,
            priority=2,
        )
        tenants.extend((base, joiner))
        pinned[base.name] = k
        pinned[joiner.name] = k
    return tenants, pinned


def pipeline_admission(
    *, rate_hz: float = 4.0, burst: int = 2
) -> AdmissionConfig:
    """Admission tier for the pipeline scenario's diurnal base tier.

    The token bucket sits below the diurnal peak rate, so arrival
    bursts at the top of the sine get rate-shed -- deterministic
    (arrival-clocked), identical across backends and lag settings,
    and it exercises the admit/shed benchmark columns.  Joiners run
    at priority 2, which has no tier and is always admitted.
    """
    return AdmissionConfig(
        tiers=(TierConfig(priority=1, rate_hz=rate_hz, burst=burst),)
    )


def run_pipeline_fleet(
    platform_name: str = "xavier",
    *,
    shards: int = 16,
    max_lag: int = 8,
    backend: str = "fork",
    transport: str = "auto",
    node_budget: int = 250,
    horizon_s: float = 60.0,
) -> ShardedFleetReport:
    """One pipelined (or, at ``max_lag=0``, lockstep) gate run."""
    from repro.serve.fleet import ShardRouter

    tenants, pinned = pipeline_tenants(shards)
    fleet = Fleet(
        get_platform(platform_name),
        tenants,
        make_fleet_policy_factory(
            platform_name, node_budget=node_budget
        ),
        shards=shards,
        backend=backend,
        router=ShardRouter(shards, mode="pinned", pinned=pinned),
        sync_rounds=PIPELINE_SYNC_ROUNDS,
        max_lag=max_lag,
        admission=pipeline_admission(),
        transport=transport,
    )
    return fleet.run(horizon_s=horizon_s)


def fleet_row(report: ShardedFleetReport) -> dict[str, object]:
    """One fleet run as a summary-table row (the ``haxconn serve``
    fleet columns)."""
    ttf = report.time_to_first_hax_s()
    totals = report.admission_totals()
    return {
        "shards": report.shards,
        "backend": report.backend,
        "served": report.served,
        "admitted": totals.get("admitted", report.served),
        "shed": report.shed,
        "p50_ms": report.p50_ms if report.served else None,
        "p99_ms": report.p99_ms if report.served else None,
        "rounds": report.rounds,
        "solves": report.solves,
        "store_hits": report.store_hits,
        "wall_ms": report.wall_s * 1e3,
        "round_wall_ms": report.mean_round_wall_ms(),
        "idle_ms_per_round": report.idle_per_round_ms(),
        "max_lag": report.max_lag,
        "tput_rps": report.throughput_rps,
        "ttf_hax_ms": None if ttf is None else ttf * 1e3,
    }


FLEET_COLUMNS = (
    "shards",
    "backend",
    "served",
    "admitted",
    "shed",
    "p50_ms",
    "p99_ms",
    "rounds",
    "solves",
    "store_hits",
    "wall_ms",
    "round_wall_ms",
    "idle_ms_per_round",
    "max_lag",
    "tput_rps",
    "ttf_hax_ms",
)


def format_fleet_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        list(FLEET_COLUMNS),
        title="Serving fleet: shard scaling on one machine "
        "(shared solve store + epoch gossip)",
    )


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "policy",
            "served",
            "admitted",
            "shed",
            "p50_ms",
            "p99_ms",
            "miss_%",
            "goodput_rps",
            "rounds",
            "idle_ms_per_round",
            "solves",
            "cache_hits",
            "swaps",
            "memo_hit_%",
            "fp_iter",
            "throttled",
            "gpu_util_%",
        ],
        title="Serving: cache+anytime vs static policies on a "
        "changing tenant mix",
    )


if __name__ == "__main__":
    print(format_results(run()))
    print()
    print(format_fleet_results(run_fleet()))
