"""Fig. 7: D-HaX-CoNN converging while the workload changes.

Three DNN-pair phases (the pairs of Table 6 experiments 2, 5, and 1)
execute for ten seconds each; D-HaX-CoNN starts each phase from the
best naive schedule, refines it at the paper's update instants, and
should converge to the oracle (the certified-optimal schedule's
measured latency).  The paper observes convergence after 5.8 s, 1.9 s,
and 1.3 s respectively -- the first phase is slowest because it has
three DNNs and the most layer groups.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dynamic import DHaXCoNN, DynamicTrace
from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload, WorkloadDNN
from repro.experiments.common import format_table, get_db
from repro.soc.platform import get_platform


def default_phases() -> tuple[Workload, ...]:
    """The paper's three phases (Table 6 pairs 2, 5, 1)."""
    return (
        Workload.concurrent("resnet152", "inception", objective="latency"),
        Workload(
            dnns=(
                WorkloadDNN.of("googlenet", "resnet152"),
                WorkloadDNN.of("fcn_resnet18"),
            ),
            objective="latency",
        ),
        Workload.concurrent("vgg19", "resnet152", objective="latency"),
    )


def run_trace(
    platform_name: str = "xavier",
    phases: Sequence[Workload] | None = None,
    *,
    phase_duration_s: float = 10.0,
) -> DynamicTrace:
    platform = get_platform(platform_name)
    scheduler = HaXCoNN(platform, db=get_db(platform_name))
    dynamic = DHaXCoNN(scheduler)
    return dynamic.run(
        phases if phases is not None else default_phases(),
        phase_duration_s=phase_duration_s,
    )


def run(
    platform_name: str = "xavier",
    phases: Sequence[Workload] | None = None,
    *,
    phase_duration_s: float = 10.0,
) -> list[dict[str, object]]:
    trace = run_trace(
        platform_name, phases, phase_duration_s=phase_duration_s
    )
    rows: list[dict[str, object]] = []
    for k, phase in enumerate(trace.phases):
        rows.append(
            {
                "phase": k + 1,
                "workload": "+".join(phase.workload.names),
                "initial_ms": phase.initial_latency_ms,
                "final_ms": phase.final_latency_ms,
                "oracle_ms": phase.oracle_latency_ms,
                "converged": phase.converged,
                "convergence_s": phase.convergence_time_s,
                "updates": len(phase.updates),
            }
        )
    return rows


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        [
            "phase",
            "workload",
            "initial_ms",
            "final_ms",
            "oracle_ms",
            "converged",
            "convergence_s",
            "updates",
        ],
        title="Fig. 7: D-HaX-CoNN convergence over three workload phases",
    )


if __name__ == "__main__":
    print(format_results(run()))
