"""Fig. 4: contention intervals for layers co-running on three DSAs.

The paper's illustration: five layers from three DNNs run on three
accelerators; each layer's slowdown varies over its lifetime with the
set of concurrently active layers.  We reproduce the phenomenon by
running a synthetic version on the simulator and reporting the
contention intervals the engine records -- each interval is a period
with a fixed co-runner set and a fixed bandwidth split.
"""

from __future__ import annotations

from repro.experiments.common import format_table
from repro.soc.engine import Engine, SimTask
from repro.soc.platform import get_platform
from repro.soc.timeline import Timeline

#: synthetic layers: (id, host accel, compute_ms, traffic share of BW)
_LAYERS = (
    ("L11", "gpu", 3.0, 0.55),
    ("L21", "gpu", 2.0, 0.45),
    ("L12", "dla", 4.0, 0.35),
    ("L13", "cpu", 1.5, 0.30),
    ("L23", "cpu", 2.5, 0.50),
)


def simulate(platform_name: str = "xavier") -> Timeline:
    """Run the synthetic co-schedule and return its timeline."""
    platform = get_platform(platform_name)
    bw = platform.dram_bandwidth
    tasks = []
    prev_by_accel: dict[str, str] = {}
    for name, accel, compute_ms, share in _LAYERS:
        deps = (prev_by_accel[accel],) if accel in prev_by_accel else ()
        compute = compute_ms * 1e-3
        tasks.append(
            SimTask(
                task_id=name,
                accel=accel,
                compute_s=compute,
                dram_bytes=share * bw * compute,
                max_bw=share * bw,
                deps=deps,
                meta={"role": "layer"},
            )
        )
        prev_by_accel[accel] = name
    return Engine(platform).run(tasks)


def run(platform_name: str = "xavier") -> list[dict[str, object]]:
    """Contention-interval rows: one per engine-recorded interval."""
    platform = get_platform(platform_name)
    bw = platform.dram_bandwidth
    timeline = simulate(platform_name)
    rows: list[dict[str, object]] = []
    for k, interval in enumerate(timeline.intervals):
        rows.append(
            {
                "interval": k,
                "start_ms": interval.start * 1e3,
                "end_ms": interval.end * 1e3,
                "active": "+".join(sorted(interval.allocations)),
                "total_bw_pct": interval.total_bandwidth / bw * 100,
            }
        )
    return rows


def layer_slowdowns(platform_name: str = "xavier") -> dict[str, float]:
    """Per-layer observed slowdowns (the colored regions of Fig. 4)."""
    timeline = simulate(platform_name)
    return {r.task_id: r.slowdown for r in timeline.records}


def format_results(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        ["interval", "start_ms", "end_ms", "active", "total_bw_pct"],
        title="Fig. 4: contention intervals (synthetic 5 layers / 3 DSAs)",
    )


if __name__ == "__main__":
    print(format_results(run()))
    print()
    for layer, slowdown in sorted(layer_slowdowns().items()):
        print(f"{layer}: slowdown {slowdown:.3f}x")
