"""HaX-CoNN: heterogeneity-aware execution of concurrent DNNs.

- :mod:`repro.core.workload` -- what is being co-scheduled,
- :mod:`repro.core.schedule` -- layer-group-to-DSA mapping IR,
- :mod:`repro.core.formulation` -- the cost model of paper Section 3.4
  (Eqs. 1-11): contention intervals, transition costs, objectives,
- :mod:`repro.core.haxconn` -- the optimal scheduler,
- :mod:`repro.core.dynamic` -- D-HaX-CoNN runtime adaptation,
- :mod:`repro.core.baselines` -- GPU-only, naive GPU&DSA, Mensa,
  Herald, and H2H comparators.
"""

from repro.core.workload import Workload, WorkloadDNN
from repro.core.schedule import DNNSchedule, Schedule
from repro.core.formulation import (
    EvaluationResult,
    Formulation,
    ScheduleInfeasible,
)
from repro.core.haxconn import HaXCoNN, ScheduleResult
from repro.core.baselines import (
    gpu_only,
    naive_concurrent,
    mensa,
    herald,
    h2h,
    BASELINES,
)
from repro.core.dynamic import DHaXCoNN, DynamicTrace
from repro.core.schedule_cache import ScheduleCache

__all__ = [
    "Workload",
    "WorkloadDNN",
    "DNNSchedule",
    "Schedule",
    "EvaluationResult",
    "Formulation",
    "ScheduleInfeasible",
    "HaXCoNN",
    "ScheduleResult",
    "gpu_only",
    "naive_concurrent",
    "mensa",
    "herald",
    "h2h",
    "BASELINES",
    "DHaXCoNN",
    "DynamicTrace",
    "ScheduleCache",
]
