"""Workload description: which DNNs run together and how.

A :class:`Workload` is an ordered set of logical DNN streams that
execute *concurrently*.  Each stream is a :class:`WorkloadDNN`:

- ``models`` -- one model name, or several chained back-to-back (the
  paper's Scenario 4 runs GoogleNet->ResNet152 as one serial stream
  next to a parallel FCN-ResNet18),
- ``repeats`` -- how many frames the stream processes per scheduling
  round; the exhaustive Table 8 evaluation balances mismatched DNN
  speeds by iterating the faster one more often,
- ``instance`` -- disambiguates identical streams (Scenario 1 runs two
  instances of the same DNN on consecutive frames).

The objective mirrors the paper's two goals: ``"latency"`` minimizes
the maximum stream latency (Eq. 11), ``"throughput"`` maximizes the
sum of stream rates (Eq. 10).  ``"energy"`` is this reproduction's
extension along the AxoNN axis the paper cites: minimize the active
energy of one scheduling round.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

OBJECTIVES = ("latency", "throughput", "energy")


@dataclass(frozen=True)
class WorkloadDNN:
    """One concurrent stream: a chain of one or more DNN models."""

    models: tuple[str, ...]
    repeats: int = 1
    instance: int = 0

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("WorkloadDNN needs at least one model")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.instance < 0:
            raise ValueError(f"instance must be >= 0, got {self.instance}")

    @classmethod
    def of(cls, *models: str, repeats: int = 1) -> "WorkloadDNN":
        return cls(models=tuple(models), repeats=repeats)

    @property
    def name(self) -> str:
        base = "+".join(self.models)
        if self.repeats != 1:
            base = f"{base}x{self.repeats}"
        if self.instance:
            base = f"{base}@{self.instance}"
        return base


@dataclass(frozen=True)
class Workload:
    """A set of concurrent streams plus the optimization objective.

    ``pipeline`` lists (upstream, downstream) stream-index pairs with a
    per-frame data dependency: frame *r* of the downstream stream may
    only start once frame *r* of the upstream stream completed (the
    paper's Scenario 3 detection->tracking chain over a camera
    stream).
    """

    dnns: tuple[WorkloadDNN, ...]
    objective: str = "latency"
    pipeline: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.dnns:
            raise ValueError("workload needs at least one DNN stream")
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, got "
                f"{self.objective!r}"
            )
        names = [d.name for d in self.dnns]
        if len(set(names)) != len(names):
            raise ValueError(
                f"duplicate stream names in workload: {names}; use "
                "distinct `instance` indices for identical streams"
            )
        for up, down in self.pipeline:
            if not (0 <= up < len(self.dnns)) or not (
                0 <= down < len(self.dnns)
            ):
                raise ValueError(
                    f"pipeline edge ({up}, {down}) out of range"
                )
            if up == down:
                raise ValueError("pipeline edge cannot be a self-loop")

    @classmethod
    def concurrent(
        cls, *models: str | WorkloadDNN, objective: str = "latency"
    ) -> "Workload":
        """Build a workload of concurrent streams from model names.

        Identical streams (Scenario 1) are auto-disambiguated with
        increasing ``instance`` indices.
        """
        dnns = [
            m if isinstance(m, WorkloadDNN) else WorkloadDNN.of(m)
            for m in models
        ]
        seen: dict[str, int] = {}
        out: list[WorkloadDNN] = []
        for d in dnns:
            key = d.name
            count = seen.get(key, 0)
            seen[key] = count + 1
            out.append(replace(d, instance=count) if count else d)
        return cls(dnns=tuple(out), objective=objective)

    def __len__(self) -> int:
        return len(self.dnns)

    def __iter__(self) -> Iterator[WorkloadDNN]:
        return iter(self.dnns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dnns)
