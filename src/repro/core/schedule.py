"""Schedule IR: the layer-group-to-accelerator mapping S (Eq. 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass(frozen=True)
class DNNSchedule:
    """Accelerator assignment of every layer group of one stream."""

    dnn_name: str
    #: accelerator name per layer group, in group order
    assignment: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.assignment:
            raise ValueError(f"{self.dnn_name}: empty assignment")

    def __len__(self) -> int:
        return len(self.assignment)

    def __iter__(self) -> Iterator[str]:
        return iter(self.assignment)

    def __getitem__(self, group_index: int) -> str:
        return self.assignment[group_index]

    @property
    def transitions(self) -> tuple[tuple[int, str, str], ...]:
        """(boundary index, src, dst) per inter-DSA transition (Eq. 3)."""
        out = []
        for i in range(len(self.assignment) - 1):
            if self.assignment[i] != self.assignment[i + 1]:
                out.append((i, self.assignment[i], self.assignment[i + 1]))
        return tuple(out)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    @property
    def accelerators_used(self) -> frozenset[str]:
        return frozenset(self.assignment)

    def describe(self) -> str:
        """Human-readable form matching the paper's Table 6 TR column,
        e.g. ``"dla[0-3] ->gpu[4-11]"``."""
        parts = []
        start = 0
        for i, _src, _dst in self.transitions:
            parts.append(f"{self.assignment[start]}[{start}-{i}]")
            start = i + 1
        parts.append(f"{self.assignment[start]}[{start}-{len(self) - 1}]")
        return " ->".join(parts)


@dataclass(frozen=True)
class Schedule:
    """A complete co-schedule for a workload.

    ``serialized`` marks the fallback mode where streams run
    back-to-back instead of concurrently (the paper's "GPU-only"
    case that HaX-CoNN selects when concurrency cannot win).
    """

    per_dnn: tuple[DNNSchedule, ...]
    serialized: bool = False
    #: free-form annotations (producing scheduler, predicted metrics)
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.per_dnn:
            raise ValueError("schedule covers no DNNs")

    def __len__(self) -> int:
        return len(self.per_dnn)

    def __iter__(self) -> Iterator[DNNSchedule]:
        return iter(self.per_dnn)

    def __getitem__(self, index: int) -> DNNSchedule:
        return self.per_dnn[index]

    @property
    def total_transitions(self) -> int:
        return sum(s.num_transitions for s in self.per_dnn)

    def describe(self) -> str:
        mode = "serial" if self.serialized else "concurrent"
        lines = [f"[{mode}]"]
        for s in self.per_dnn:
            lines.append(f"  {s.dnn_name}: {s.describe()}")
        return "\n".join(lines)
