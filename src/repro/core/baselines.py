"""Baseline schedulers the paper compares against (Section 5).

All baselines share HaX-CoNN's profiling substrate; what differs is
the cost model -- exactly the axes of the paper's Table 1:

===============  ============  ===========  ===========  ==========
scheduler        concurrency   transitions  contention   optimal
===============  ============  ===========  ===========  ==========
``gpu_only``     serialized    n/a          n/a          n/a
``naive``        fixed map     n/a          n/a          n/a
``mensa``        per-DNN       greedy       ignored      no
``herald``       co-schedule   **ignored**  ignored      for its model
``h2h``          co-schedule   modeled      ignored      for its model
HaX-CoNN         co-schedule   modeled      **PCCS**     yes
===============  ============  ===========  ===========  ==========

Each returns a :class:`~repro.core.haxconn.ScheduleResult` whose
``predicted`` field is the *scheduler's own belief*; ground truth
comes from executing the schedule on the simulator
(:mod:`repro.runtime`).
"""

from __future__ import annotations

import dataclasses

from repro.contention.base import NoContentionModel
from repro.core.formulation import Formulation
from repro.core.haxconn import (
    HaXCoNN,
    ScheduleResult,
    stream_profiles,
)
from repro.core.schedule import DNNSchedule, Schedule
from repro.core.workload import Workload
from repro.profiling.database import ProfileDB
from repro.solver.problem import Infeasible
from repro.soc.platform import Platform, get_platform


def _context(
    platform: Platform | str, db: ProfileDB | None
) -> tuple[Platform, ProfileDB]:
    plat = get_platform(platform) if isinstance(platform, str) else platform
    return plat, (db if db is not None else ProfileDB(plat))


def _contention_free_formulation(
    workload: Workload,
    platform: Platform,
    db: ProfileDB,
    *,
    max_groups: int | None,
    include_transitions: bool = True,
    resource_constrained: bool = True,
) -> Formulation:
    profiles = stream_profiles(workload, db, max_groups=max_groups)
    return Formulation(
        profiles,
        [d.repeats for d in workload],
        workload.objective,
        NoContentionModel(),
        include_transitions=include_transitions,
        resource_constrained=resource_constrained,
        pipeline=workload.pipeline,
        accel_power_w={
            a.name: a.active_power_w for a in platform.accelerators
        },
    )


def gpu_only(
    workload: Workload,
    platform: Platform | str,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
) -> ScheduleResult:
    """Everything on the GPU, streams serialized (paper baseline 1)."""
    platform, db = _context(platform, db)
    formulation = _contention_free_formulation(
        workload, platform, db, max_groups=max_groups
    )
    gpu = platform.gpu.name
    assignments = [
        tuple(gpu for _ in range(len(p))) for p in formulation.profiles
    ]
    predicted = formulation.evaluate(assignments, serialized=True)
    schedule = Schedule(
        per_dnn=tuple(
            DNNSchedule(dnn_name=workload.names[n], assignment=a)
            for n, a in enumerate(assignments)
        ),
        serialized=True,
        meta={"scheduler": "gpu-only"},
    )
    return ScheduleResult(
        schedule=schedule,
        predicted=predicted,
        solver=None,
        formulation=formulation,
    )


def naive_concurrent(
    workload: Workload,
    platform: Platform | str,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
    orientation: tuple[str, ...] | None = None,
) -> ScheduleResult:
    """Whole-network GPU & DSA mapping (paper baseline 2).

    Stream *n* runs entirely on ``orientation[n % len(orientation)]``
    (default: GPU, DSA, GPU, ...), except capability-restricted groups
    which fall back to the GPU -- TensorRT's GPUFallbackMode.
    """
    platform, db = _context(platform, db)
    formulation = _contention_free_formulation(
        workload, platform, db, max_groups=max_groups
    )
    if orientation is None:
        orientation = (platform.gpu.name, platform.dsa.name)
    gpu = platform.gpu.name
    assignments = []
    for n, profile in enumerate(formulation.profiles):
        target = orientation[n % len(orientation)]
        assignments.append(
            tuple(
                target if target in g.time_s else gpu
                for g in profile.groups
            )
        )
    predicted = formulation.evaluate(assignments, check_exclusive=False)
    schedule = Schedule(
        per_dnn=tuple(
            DNNSchedule(dnn_name=workload.names[n], assignment=a)
            for n, a in enumerate(assignments)
        ),
        serialized=False,
        meta={"scheduler": "naive-gpu-dsa", "orientation": orientation},
    )
    return ScheduleResult(
        schedule=schedule,
        predicted=predicted,
        solver=None,
        formulation=formulation,
    )


def mensa(
    workload: Workload,
    platform: Platform | str,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
) -> ScheduleResult:
    """Mensa [Boroumand et al., PACT'21]: per-DNN greedy affinity.

    Each stream is mapped independently (Mensa only supports single-DNN
    execution); each group greedily picks the DSA minimizing its own
    time plus the immediate transition cost -- the myopic strategy the
    paper notes "fails to account for transition costs occurring in
    the future", and it is blind to both concurrency and contention.
    """
    platform, db = _context(platform, db)
    formulation = _contention_free_formulation(
        workload, platform, db, max_groups=max_groups
    )
    assignments = []
    for profile in formulation.profiles:
        prev: str | None = None
        picked: list[str] = []
        for g, gp in enumerate(profile.groups):
            best_accel, best_cost = None, float("inf")
            for accel, t in gp.time_s.items():
                cost = t
                if prev is not None and accel != prev:
                    cost += profile.transition(g - 1, prev, accel)
                if cost < best_cost:
                    best_accel, best_cost = accel, cost
            assert best_accel is not None
            picked.append(best_accel)
            prev = best_accel
        assignments.append(tuple(picked))
    predicted = formulation.evaluate(assignments, check_exclusive=False)
    schedule = Schedule(
        per_dnn=tuple(
            DNNSchedule(dnn_name=workload.names[n], assignment=a)
            for n, a in enumerate(assignments)
        ),
        serialized=False,
        meta={"scheduler": "mensa"},
    )
    return ScheduleResult(
        schedule=schedule,
        predicted=predicted,
        solver=None,
        formulation=formulation,
    )


def herald(
    workload: Workload,
    platform: Platform | str,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
    max_transitions: int = 2,
) -> ScheduleResult:
    """Herald [Kwon et al., HPCA'21]: co-schedules on a cost model
    that ignores **both** transition costs and memory contention."""
    platform, db = _context(platform, db)
    scheduler = HaXCoNN(
        platform,
        db=db,
        contention_model=NoContentionModel(),
        include_transitions=False,
        resource_constrained=False,
        max_transitions=max_transitions,
        max_groups=max_groups,
    )
    return _schedule_or_naive(scheduler, workload, "herald")


def h2h(
    workload: Workload,
    platform: Platform | str,
    *,
    db: ProfileDB | None = None,
    max_groups: int | None = 12,
    max_transitions: int = 2,
) -> ScheduleResult:
    """H2H [Zhang et al., DAC'22]: Herald plus transition-cost
    awareness, still blind to shared-memory contention."""
    platform, db = _context(platform, db)
    scheduler = HaXCoNN(
        platform,
        db=db,
        contention_model=NoContentionModel(),
        include_transitions=True,
        resource_constrained=False,
        max_transitions=max_transitions,
        max_groups=max_groups,
    )
    return _schedule_or_naive(scheduler, workload, "h2h")


def _schedule_or_naive(
    scheduler: HaXCoNN, workload: Workload, name: str
) -> ScheduleResult:
    """Solve with the baseline's cost model; fall back to the naive
    whole-network mapping when its own (chain-timeline, Eq. 9)
    feasibility test rejects everything -- e.g. when both streams
    contain GPU-forced groups that structurally overlap.  The real
    Herald/H2H also emit such co-located mappings in those cases (the
    paper: "certain layers end up being assigned to the same
    accelerator at the same time")."""
    try:
        return scheduler.schedule(
            workload, serial_fallback=False, scheduler_name=name
        )
    except Infeasible:
        result = naive_concurrent(
            workload,
            scheduler.platform,
            db=scheduler.db,
            max_groups=scheduler.max_groups,
        )
        schedule = dataclasses.replace(
            result.schedule, meta={"scheduler": name, "fallback": "naive"}
        )
        return ScheduleResult(
            schedule=schedule,
            predicted=result.predicted,
            solver=None,
            formulation=result.formulation,
        )


#: name -> callable, for experiment drivers
BASELINES = {
    "gpu_only": gpu_only,
    "naive": naive_concurrent,
    "mensa": mensa,
    "herald": herald,
    "h2h": h2h,
}
