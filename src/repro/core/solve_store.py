"""Persistent, content-addressed solve store (append-only JSONL).

The serving fleet shares solve work across shard processes *and*
across runs: every converged schedule and every exported
evaluation-memo fragment lands in one on-disk store keyed by
:func:`repro.core.schedule_cache.workload_signature`, so a cold shard
(or a repeated benchmark run) starts with the incumbents and memo
entries earlier runs already paid for.  Both record kinds hold *pure*
values -- a stored schedule re-materializes bit-identically against a
fresh formulation, and memo entries are bit-identical to recomputation
(see :class:`repro.core.evalcache.MemoTable`) -- so the store is
purely a speed channel: results never depend on whether it was warm.

File format (one JSON object per line, documented in
``docs/architecture.md`` section 6b):

``{"v": 1, "kind": "schedule", "sig": <workload signature>,
"id": "sha256:<hex>", "schedule": {"serialized": bool, "streams":
[{"dnn": str, "assignment": [accel, ...]}, ...]}}``

``{"v": 1, "kind": "memo", "sig": <workload signature>,
"id": "sha256:<hex>", "entries": [[key, value], ...]}`` where ``key``
is ``[[ [accel, ...], ... ], serialized, check_exclusive]`` and
``value`` is ``["ok", [per_dnn...], objective, makespan, energy|null,
iterations]`` or ``["bad", message]``.

Records are content-addressed: ``id`` is the SHA-256 of the canonical
(sorted-keys, compact) JSON of ``[kind, sig, body]``, and appends
deduplicate on it, so replaying gossip deltas or re-running a
benchmark never grows the file with duplicate records.  Appends are
single-line and the loader tolerates malformed lines (a crash
mid-append loses only the trailing record, never the store).  The
fleet keeps a single writer -- the parent process -- so concurrent
shard workers never interleave partial lines.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

#: on-disk schema version stamped into every record
SCHEMA_VERSION = 1


def _record_id(kind: str, sig: str, body: Any) -> str:
    """Content address of one record (order-independent for dicts)."""
    blob = json.dumps(
        [kind, sig, body], sort_keys=True, separators=(",", ":")
    )
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def memo_entry_to_json(key: Any, value: Any) -> list[Any]:
    """One memo-table entry as a JSON-serializable pair.

    Floats survive exactly: ``json`` emits ``repr``-round-trippable
    literals, so a loaded entry is bit-identical to the stored one.
    """
    assign_key, serialized, check_exclusive = key
    jkey = [
        [list(group) for group in assign_key],
        bool(serialized),
        bool(check_exclusive),
    ]
    if value[0] == "ok":
        _tag, per_dnn, objective, makespan, energy, iterations = value
        jval: list[Any] = [
            "ok",
            [float(x) for x in per_dnn],
            float(objective),
            float(makespan),
            None if energy is None else float(energy),
            int(iterations),
        ]
    else:
        jval = ["bad", str(value[1])]
    return [jkey, jval]


def memo_entry_from_json(item: Sequence[Any]) -> tuple[Any, Any]:
    """Inverse of :func:`memo_entry_to_json` (exact round-trip)."""
    jkey, jval = item
    key = (
        tuple(tuple(group) for group in jkey[0]),
        bool(jkey[1]),
        bool(jkey[2]),
    )
    if jval[0] == "ok":
        value: tuple[Any, ...] = (
            "ok",
            tuple(float(x) for x in jval[1]),
            float(jval[2]),
            float(jval[3]),
            None if jval[4] is None else float(jval[4]),
            int(jval[5]),
        )
    else:
        value = ("bad", str(jval[1]))
    return key, value


class SolveStore:
    """Append-only, content-addressed store of solve artifacts.

    ``readonly=True`` refuses appends (fleet shard workers receive the
    store's *contents* through the gossip protocol instead of a file
    handle; only the fleet parent writes).  The latest schedule record
    per signature wins; memo records accumulate in file order.
    """

    def __init__(self, path: str | Path, *, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        #: content ids of every record seen (the dedup index)
        self._ids: set[str] = set()
        self._schedules: dict[str, dict[str, Any]] = {}
        self._memo: dict[str, list[tuple[Any, Any]]] = {}
        #: malformed lines skipped while loading (crash-tolerant tail)
        self.skipped_lines = 0
        if self.path.exists():
            self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                self._adopt(record)
            except (ValueError, KeyError, TypeError, IndexError):
                # a torn append (crash mid-write) loses one record,
                # never the store; count it so callers can report
                self.skipped_lines += 1

    def _adopt(self, record: Mapping[str, Any]) -> None:
        kind, sig = str(record["kind"]), str(record["sig"])
        rid = str(record["id"])
        if rid in self._ids:
            return
        if kind == "schedule":
            payload = record["schedule"]
            # validate shape before adopting
            entries = [
                {
                    "dnn": str(s["dnn"]),
                    "assignment": [str(a) for a in s["assignment"]],
                }
                for s in payload["streams"]
            ]
            self._schedules[sig] = {
                "serialized": bool(payload["serialized"]),
                "streams": entries,
            }
        elif kind == "memo":
            converted = [
                memo_entry_from_json(item) for item in record["entries"]
            ]
            self._memo.setdefault(sig, []).extend(converted)
        else:
            raise KeyError(f"unknown record kind {kind!r}")
        self._ids.add(rid)

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct records adopted."""
        return len(self._ids)

    def signatures(self) -> tuple[str, ...]:
        """Every signature with any stored artifact, sorted."""
        return tuple(sorted(set(self._schedules) | set(self._memo)))

    def schedules(self) -> dict[str, dict[str, Any]]:
        """Latest schedule payload per signature."""
        return dict(self._schedules)

    def memo_for(self, sig: str) -> tuple[tuple[Any, Any], ...]:
        """Accumulated memo entries for one signature, in file order."""
        return tuple(self._memo.get(sig, ()))

    # -- appends -------------------------------------------------------
    def _append(self, kind: str, sig: str, field: str, body: Any) -> bool:
        if self.readonly:
            raise ValueError(f"solve store {self.path} is read-only")
        rid = _record_id(kind, sig, body)
        if rid in self._ids:
            return False
        record = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "sig": sig,
            "id": rid,
            field: body,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        self._adopt(record)
        return True

    def append_schedule(self, sig: str, payload: Mapping[str, Any]) -> bool:
        """Record a schedule payload (see
        :func:`repro.core.schedule_cache.schedule_to_payload`).
        Returns False when the identical record is already stored."""
        body = {
            "serialized": bool(payload["serialized"]),
            "streams": [
                {
                    "dnn": str(s["dnn"]),
                    "assignment": [str(a) for a in s["assignment"]],
                }
                for s in payload["streams"]
            ],
        }
        return self._append("schedule", sig, "schedule", body)

    def append_memo(
        self, sig: str, entries: Sequence[tuple[Any, Any]]
    ) -> bool:
        """Record a batch of memo-table entries for one signature."""
        if not entries:
            return False
        body = [memo_entry_to_json(key, value) for key, value in entries]
        return self._append("memo", sig, "entries", body)

    def __repr__(self) -> str:
        return (
            f"<SolveStore {self.path} {len(self._ids)} records, "
            f"{len(self._schedules)} schedules, "
            f"{sum(len(v) for v in self._memo.values())} memo entries>"
        )
