"""Persistent, content-addressed solve store (append-only JSONL).

The serving fleet shares solve work across shard processes *and*
across runs: every converged schedule and every exported
evaluation-memo fragment lands in one on-disk store keyed by
:func:`repro.core.schedule_cache.workload_signature`, so a cold shard
(or a repeated benchmark run) starts with the incumbents and memo
entries earlier runs already paid for.  Both record kinds hold *pure*
values -- a stored schedule re-materializes bit-identically against a
fresh formulation, and memo entries are bit-identical to recomputation
(see :class:`repro.core.evalcache.MemoTable`) -- so the store is
purely a speed channel: results never depend on whether it was warm.

File format (one JSON object per line, documented in
``docs/architecture.md`` section 6b):

``{"v": 1, "kind": "schedule", "sig": <workload signature>,
"id": "sha256:<hex>", "schedule": {"serialized": bool, "streams":
[{"dnn": str, "assignment": [accel, ...]}, ...]}}``

``{"v": 1, "kind": "memo", "sig": <workload signature>,
"id": "sha256:<hex>", "entries": [[key, value], ...]}`` where ``key``
is ``[[ [accel, ...], ... ], serialized, check_exclusive]`` and
``value`` is ``["ok", [per_dnn...], objective, makespan, energy|null,
iterations]`` or ``["bad", message]``.

``{"v": 1, "kind": "model", "sig": "learn:v<n>:<schema id>",
"id": "sha256:<hex>", "model": {...}}`` -- a trained guidance bundle
(see :mod:`repro.learn.models`), keyed by model-record version plus
feature-schema id so extractors only ever load models trained under
their exact feature layout.  Like schedules, the latest model record
per signature wins (retraining supersedes in place).  Model
signatures are deliberately *excluded* from :meth:`SolveStore.
signatures`, which enumerates solve artifacts for gossip/delta
protocols; models travel by whole-store sharing instead.

Append-only files only grow; :meth:`SolveStore.compact` rewrites the
file with just the live records (all memo batches, the last schedule
and model per signature), using a temp-file + atomic-rename so a
crash mid-compaction leaves the original intact.

Records are content-addressed: ``id`` is the SHA-256 of the canonical
(sorted-keys, compact) JSON of ``[kind, sig, body]``, and appends
deduplicate on it, so replaying gossip deltas or re-running a
benchmark never grows the file with duplicate records.  Appends are
single-line and the loader tolerates malformed lines (a crash
mid-append loses only the trailing record, never the store).  The
fleet keeps a single writer -- the parent process -- so concurrent
shard workers never interleave partial lines.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

#: on-disk schema version stamped into every record
SCHEMA_VERSION = 1


def _record_id(kind: str, sig: str, body: Any) -> str:
    """Content address of one record (order-independent for dicts)."""
    blob = json.dumps(
        [kind, sig, body], sort_keys=True, separators=(",", ":")
    )
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def memo_entry_to_json(key: Any, value: Any) -> list[Any]:
    """One memo-table entry as a JSON-serializable pair.

    Floats survive exactly: ``json`` emits ``repr``-round-trippable
    literals, so a loaded entry is bit-identical to the stored one.
    """
    assign_key, serialized, check_exclusive = key
    jkey = [
        [list(group) for group in assign_key],
        bool(serialized),
        bool(check_exclusive),
    ]
    if value[0] == "ok":
        _tag, per_dnn, objective, makespan, energy, iterations = value
        jval: list[Any] = [
            "ok",
            [float(x) for x in per_dnn],
            float(objective),
            float(makespan),
            None if energy is None else float(energy),
            int(iterations),
        ]
    else:
        jval = ["bad", str(value[1])]
    return [jkey, jval]


def memo_entry_from_json(item: Sequence[Any]) -> tuple[Any, Any]:
    """Inverse of :func:`memo_entry_to_json` (exact round-trip)."""
    jkey, jval = item
    key = (
        tuple(tuple(group) for group in jkey[0]),
        bool(jkey[1]),
        bool(jkey[2]),
    )
    if jval[0] == "ok":
        value: tuple[Any, ...] = (
            "ok",
            tuple(float(x) for x in jval[1]),
            float(jval[2]),
            float(jval[3]),
            None if jval[4] is None else float(jval[4]),
            int(jval[5]),
        )
    else:
        value = ("bad", str(jval[1]))
    return key, value


class SolveStore:
    """Append-only, content-addressed store of solve artifacts.

    ``readonly=True`` refuses appends (fleet shard workers receive the
    store's *contents* through the gossip protocol instead of a file
    handle; only the fleet parent writes).  The latest schedule record
    per signature wins; memo records accumulate in file order.
    """

    def __init__(self, path: str | Path, *, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        #: content ids of every record seen (the dedup index)
        self._ids: set[str] = set()
        self._schedules: dict[str, dict[str, Any]] = {}
        self._memo: dict[str, list[tuple[Any, Any]]] = {}
        self._models: dict[str, dict[str, Any]] = {}
        #: malformed lines skipped while loading (crash-tolerant tail)
        self.skipped_lines = 0
        if self.path.exists():
            self._load()

    # -- loading -------------------------------------------------------
    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                self._adopt(record)
            except (ValueError, KeyError, TypeError, IndexError):
                # a torn append (crash mid-write) loses one record,
                # never the store; count it so callers can report
                self.skipped_lines += 1

    def _adopt(self, record: Mapping[str, Any]) -> None:
        kind, sig = str(record["kind"]), str(record["sig"])
        rid = str(record["id"])
        if rid in self._ids:
            return
        if kind == "schedule":
            payload = record["schedule"]
            # validate shape before adopting
            entries = [
                {
                    "dnn": str(s["dnn"]),
                    "assignment": [str(a) for a in s["assignment"]],
                }
                for s in payload["streams"]
            ]
            self._schedules[sig] = {
                "serialized": bool(payload["serialized"]),
                "streams": entries,
            }
        elif kind == "memo":
            converted = [
                memo_entry_from_json(item) for item in record["entries"]
            ]
            self._memo.setdefault(sig, []).extend(converted)
        elif kind == "model":
            self._models[sig] = dict(record["model"])
        else:
            raise KeyError(f"unknown record kind {kind!r}")
        self._ids.add(rid)

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct records adopted."""
        return len(self._ids)

    def signatures(self) -> tuple[str, ...]:
        """Every workload signature with a solve artifact, sorted.

        Model records are excluded on purpose: this enumeration feeds
        the fleet's gossip/delta protocol, which ships schedules and
        memo fragments keyed by workload signature.
        """
        return tuple(sorted(set(self._schedules) | set(self._memo)))

    def schedules(self) -> dict[str, dict[str, Any]]:
        """Latest schedule payload per signature."""
        return dict(self._schedules)

    def memo_for(self, sig: str) -> tuple[tuple[Any, Any], ...]:
        """Accumulated memo entries for one signature, in file order."""
        return tuple(self._memo.get(sig, ()))

    def models(self) -> dict[str, dict[str, Any]]:
        """Latest model body per model signature."""
        return dict(self._models)

    def model_sigs(self) -> tuple[str, ...]:
        """Every model signature, sorted."""
        return tuple(sorted(self._models))

    def model_for(self, sig: str) -> dict[str, Any] | None:
        """Latest model body stored under ``sig``, or ``None``."""
        body = self._models.get(sig)
        return dict(body) if body is not None else None

    def stats(self) -> dict[str, Any]:
        """Live-record counts plus on-disk size, for ``store stats``."""
        return {
            "path": str(self.path),
            "records": len(self._ids),
            "schedules": len(self._schedules),
            "memo_signatures": len(self._memo),
            "memo_entries": sum(len(v) for v in self._memo.values()),
            "models": len(self._models),
            "bytes": (
                self.path.stat().st_size if self.path.exists() else 0
            ),
            "skipped_lines": self.skipped_lines,
        }

    # -- appends -------------------------------------------------------
    def _append(self, kind: str, sig: str, field: str, body: Any) -> bool:
        if self.readonly:
            raise ValueError(f"solve store {self.path} is read-only")
        rid = _record_id(kind, sig, body)
        if rid in self._ids:
            return False
        record = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "sig": sig,
            "id": rid,
            field: body,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        self._adopt(record)
        return True

    def append_schedule(self, sig: str, payload: Mapping[str, Any]) -> bool:
        """Record a schedule payload (see
        :func:`repro.core.schedule_cache.schedule_to_payload`).
        Returns False when the identical record is already stored."""
        body = {
            "serialized": bool(payload["serialized"]),
            "streams": [
                {
                    "dnn": str(s["dnn"]),
                    "assignment": [str(a) for a in s["assignment"]],
                }
                for s in payload["streams"]
            ],
        }
        return self._append("schedule", sig, "schedule", body)

    def append_memo(
        self, sig: str, entries: Sequence[tuple[Any, Any]]
    ) -> bool:
        """Record a batch of memo-table entries for one signature."""
        if not entries:
            return False
        body = [memo_entry_to_json(key, value) for key, value in entries]
        return self._append("memo", sig, "entries", body)

    def append_model(self, sig: str, body: Mapping[str, Any]) -> bool:
        """Record a trained guidance bundle (last-wins per signature).

        ``body`` must be JSON-serializable -- in practice a
        :meth:`repro.learn.models.ModelBundle.to_dict` payload.
        Returns False when the identical record is already stored.
        """
        return self._append("model", sig, "model", dict(body))

    # -- maintenance ---------------------------------------------------
    def compact(self) -> dict[str, int]:
        """Rewrite the file with only the live records.

        Keeps, in original file order: every memo batch, and the *last*
        schedule and model record per signature (earlier ones are the
        superseded history).  Duplicate record ids and malformed lines
        are dropped.  Kept lines are copied byte-for-byte -- no
        re-serialization -- and the rewrite lands via a temp file and
        :func:`os.replace`, so a crash mid-compaction leaves the
        original file intact.  In-memory state is reloaded from the
        compacted file.  Raises :class:`ValueError` on a read-only
        store.
        """
        if self.readonly:
            raise ValueError(f"solve store {self.path} is read-only")
        if not self.path.exists():
            return {"kept": 0, "dropped": 0, "bytes": 0}
        lines = self.path.read_text().splitlines()
        # last line index per (kind, sig) for the last-wins kinds
        last: dict[tuple[str, str], int] = {}
        parsed: list[tuple[str, str, str] | None] = []
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
                kind = str(record["kind"])
                sig = str(record["sig"])
                rid = str(record["id"])
                if kind not in ("schedule", "memo", "model"):
                    raise KeyError(kind)
            except (ValueError, KeyError, TypeError, IndexError):
                parsed.append(None)
                continue
            parsed.append((kind, sig, rid))
            if kind in ("schedule", "model"):
                last[(kind, sig)] = i
        seen_ids: set[str] = set()
        kept: list[str] = []
        for i, line in enumerate(lines):
            meta = parsed[i]
            if meta is None:
                continue
            kind, sig, rid = meta
            if rid in seen_ids:
                continue
            if kind in ("schedule", "model") and last[(kind, sig)] != i:
                continue
            seen_ids.add(rid)
            kept.append(line)
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        text = "".join(line + "\n" for line in kept)
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)
        self._ids.clear()
        self._schedules.clear()
        self._memo.clear()
        self._models.clear()
        self.skipped_lines = 0
        self._load()
        return {
            "kept": len(kept),
            "dropped": len(lines) - len(kept),
            "bytes": len(text.encode("utf-8")),
        }

    def __repr__(self) -> str:
        return (
            f"<SolveStore {self.path} {len(self._ids)} records, "
            f"{len(self._schedules)} schedules, "
            f"{sum(len(v) for v in self._memo.values())} memo entries, "
            f"{len(self._models)} models>"
        )
