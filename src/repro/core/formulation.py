"""The scheduling cost model of paper Section 3.4 (Eqs. 1-11).

Given a workload (one profile per concurrent stream), an assignment of
every layer group to an accelerator (Eq. 1), and a contention model,
:class:`Formulation` computes each stream's total execution time
(Eq. 2): standalone group times, inter-DSA transition costs (Eq. 3),
and contention slowdowns evaluated over *contention intervals* --
periods delimited by group starts/ends during which the set of
co-running groups is fixed (Eqs. 4-8, Fig. 4).

The slowdowns change the timeline and the timeline changes the
slowdowns, so the evaluation iterates to a fixed point (the role the
SMT solver's simultaneous equations play in the paper).

Feasibility follows Eq. 9: two groups of different streams may overlap
on the same accelerator for at most an epsilon interval.  Objectives
follow Eq. 10 (throughput) and Eq. 11 (min-max latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.contention.base import ContentionModel, NoContentionModel
from repro.profiling.profiler import DNNProfile
from repro.solver.problem import Infeasible

if TYPE_CHECKING:  # evalcache imports this module's names lazily
    from repro.core.evalcache import EvalCounters, EvalEngine


class ScheduleInfeasible(Infeasible):
    """The assignment violates a scheduling constraint (e.g. Eq. 9)."""


@dataclass(frozen=True, slots=True)
class ItemTiming:
    """Predicted execution of one (stream, repeat, group) item."""

    dnn: int
    rep: int
    group: int
    accel: str
    start: float
    end: float
    standalone_s: float
    slowdown: float
    req_bw: float


@dataclass(frozen=True)
class EvaluationResult:
    """Predicted timing of one complete assignment.

    ``items`` is materialized lazily: the solver evaluates thousands
    of candidates and only ever reads ``objective``.
    """

    #: T_n per stream: completion time since round start (Eq. 2)
    per_dnn_time: tuple[float, ...]
    #: solver cost (minimize); negated stream-rate sum for throughput
    objective: float
    makespan: float
    fixed_point_iterations: int
    #: active energy of the round (set when accel powers are known)
    energy_j: float | None = None
    _item_builder: Callable[[], tuple[ItemTiming, ...]] | None = None

    @property
    def items(self) -> tuple[ItemTiming, ...]:
        if self._item_builder is None:
            return ()
        cached = self.__dict__.get("_items_cache")
        if cached is None:
            cached = self._item_builder()
            object.__setattr__(self, "_items_cache", cached)
        return cached

    def mean_slowdown(self, dnn: int) -> float:
        """Duration-weighted mean contention slowdown of one stream."""
        sel = [i for i in self.items if i.dnn == dnn]
        base = sum(i.standalone_s for i in sel)
        if base <= 0:
            return 1.0
        return sum(i.end - i.start for i in sel) / base


class Formulation:
    """Cost model for one workload on one platform.

    Parameters
    ----------
    profiles:
        One (possibly concatenated) profile per concurrent stream.
    repeats:
        Frames per stream per scheduling round.
    objective:
        ``"latency"`` (Eq. 11) or ``"throughput"`` (Eq. 10).
    contention_model:
        PCCS in HaX-CoNN; :class:`NoContentionModel` reproduces what
        Herald/H2H predict.
    include_transitions:
        Disable to reproduce Herald's transition-blind cost model.
    resource_constrained:
        With the default, the predicted timeline serializes items that
        land on a busy accelerator (what the runtime's per-DSA queues
        do).  Disabled, the timeline is the naive chain sum of Eq. 4 --
        the mode Herald/H2H reason in, which is why the paper observes
        their co-located layer groups "end up waiting for each other"
        while the other accelerator idles.
    pipeline:
        Per-frame (upstream, downstream) stream dependencies (paper
        Scenario 3); honored by the resource-constrained timeline,
        invisible to the chain-sum one.
    epsilon_makespan_frac:
        Eq. 9's epsilon: the *total* time items of different streams
        overlap on the same accelerator may not exceed this fraction
        of the round makespan.  The paper keeps epsilon to "mitigate
        the prediction errors and facilitate more transition points";
        the runtime absorbs such overlaps with a short queueing delay.
    """

    def __init__(
        self,
        profiles: Sequence[DNNProfile],
        repeats: Sequence[int],
        objective: str,
        contention_model: ContentionModel | None = None,
        *,
        include_transitions: bool = True,
        resource_constrained: bool = True,
        pipeline: tuple[tuple[int, int], ...] = (),
        epsilon_makespan_frac: float = 0.06,
        accel_power_w: Mapping[str, float] | None = None,
        max_iterations: int = 25,
        tolerance: float = 1e-4,
        eval_counters: "EvalCounters | None" = None,
    ) -> None:
        if len(profiles) != len(repeats):
            raise ValueError("profiles and repeats length mismatch")
        if objective not in ("latency", "throughput", "energy"):
            raise ValueError(f"unknown objective {objective!r}")
        if objective == "energy" and not accel_power_w:
            raise ValueError("energy objective needs accel_power_w")
        if not 0 <= epsilon_makespan_frac < 1:
            raise ValueError("epsilon_makespan_frac must be in [0, 1)")
        self.profiles = tuple(profiles)
        self.repeats = tuple(repeats)
        self.objective = objective
        self.contention_model = contention_model or NoContentionModel()
        self.include_transitions = include_transitions
        self.resource_constrained = resource_constrained
        self.pipeline = tuple(pipeline)
        self.epsilon_makespan_frac = epsilon_makespan_frac
        self.accel_power_w = dict(accel_power_w or {})
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        # accelerator-id table, frozen at construction: the sorted
        # union over every group's supported DSAs.  Any assignment's
        # accelerators are a subset, and a sorted subset induces the
        # same relative order as the union, so ids are stable across
        # evaluations (no more per-evaluate re-sorting or result
        # snapshots).
        self._accel_names: list[str] = sorted(
            {a for p in self.profiles for g in p.groups for a in g.time_s}
        )
        self._accel_index: dict[str, int] = {
            a: i for i, a in enumerate(self._accel_names)
        }
        self._eval_counters = eval_counters
        self._engine: "EvalEngine | None" = None

    @property
    def accel_names(self) -> tuple[str, ...]:
        """The frozen accelerator-id table (sorted support union)."""
        return tuple(self._accel_names)

    @property
    def engine(self) -> "EvalEngine":
        """The incremental evaluation engine behind :meth:`evaluate`.

        Built lazily: plain cost-model uses (verifier re-derivations,
        one-off audits) never pay the tensor precomputation.
        """
        if self._engine is None:
            from repro.core.evalcache import EvalEngine

            self._engine = EvalEngine(self, counters=self._eval_counters)
        return self._engine

    # ------------------------------------------------------------------
    def _build_items(
        self, assignments: Sequence[Sequence[str]]
    ) -> tuple[np.ndarray, ...]:
        """Flatten the workload into item arrays.

        Returns (t0, bw, stream_id, accel_id, lead_out, lead_in,
        prev_accel_id).  ``lead_out``/``lead_in`` split the Eq. 3
        transition cost preceding an item into the flush on the
        predecessor's accelerator (``prev_accel_id``) and the load on
        the item's own; both DSAs are *occupied* for those spans, the
        way the runtime's explicit flush/load tasks behave.  Accel ids
        index into ``self._accel_names``.
        """
        t0: list[float] = []
        bw: list[float] = []
        stream: list[int] = []
        accels: list[str] = []
        lead_out: list[float] = []
        lead_in: list[float] = []
        prev_accels: list[str | None] = []
        for n, (profile, assignment) in enumerate(
            zip(self.profiles, assignments)
        ):
            if len(assignment) != len(profile):
                raise ValueError(
                    f"stream {n}: assignment covers {len(assignment)} "
                    f"groups, profile has {len(profile)}"
                )
            for rep in range(self.repeats[n]):
                for g, accel in enumerate(assignment):
                    gp = profile.groups[g]
                    if accel not in gp.time_s:
                        raise ScheduleInfeasible(
                            f"group {gp.label} of {profile.dnn_name} "
                            f"cannot run on {accel!r}"
                        )
                    out_s = in_s = 0.0
                    prev: str | None = None
                    if g > 0 and assignment[g - 1] != accel:
                        # inter-rep boundaries carry no flush: frames
                        # are independent inputs
                        if self.include_transitions:
                            out_s, in_s = profile.transition_split(
                                g - 1, assignment[g - 1], accel
                            )
                            prev = assignment[g - 1]
                    t0.append(gp.time_s[accel])
                    bw.append(gp.req_bw[accel])
                    stream.append(n)
                    accels.append(accel)
                    lead_out.append(out_s)
                    lead_in.append(in_s)
                    prev_accels.append(prev)
        index = self._accel_index
        accel_id = np.array([index[a] for a in accels], dtype=int)
        prev_accel_id = np.array(
            [index.get(p, -1) if p is not None else -1 for p in prev_accels],
            dtype=int,
        )
        return (
            np.array(t0),
            np.array(bw),
            np.array(stream, dtype=int),
            accel_id,
            np.array(lead_out),
            np.array(lead_in),
            prev_accel_id,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        assignments: Sequence[Sequence[str]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
    ) -> EvaluationResult:
        """Predict the workload timing under ``assignments``.

        Raises :class:`ScheduleInfeasible` on capability violations or
        Eq. 9 same-accelerator overlaps (unless ``serialized``, where
        streams run back-to-back and never contend).

        Delegates to the incremental engine (:mod:`repro.core.evalcache`):
        memoized, prefix-delta, cached-gather evaluation that is
        bit-identical to :meth:`evaluate_scratch` -- the reference
        implementation kept as the differential baseline.
        """
        return self.engine.evaluate(
            assignments,
            serialized=serialized,
            check_exclusive=check_exclusive,
        )

    def evaluate_many(
        self,
        batch: Sequence[Sequence[Sequence[str]]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
    ) -> "list[EvaluationResult | Exception]":
        """Evaluate a batch of sibling assignments in one engine pass.

        Infeasible entries come back as :class:`ScheduleInfeasible`
        *instances* in place of a result, so one bad sibling does not
        abort the batch.  Results are bit-identical to per-call
        :meth:`evaluate`.
        """
        return self.engine.evaluate_many(
            batch, serialized=serialized, check_exclusive=check_exclusive
        )

    def evaluate_frontier(
        self,
        batch: Sequence[Sequence[Sequence[str]]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
    ) -> "list[EvaluationResult | Exception]":
        """Evaluate a B&B frontier as one lockstep NumPy batch.

        Same calling convention and bit-identical results as
        :meth:`evaluate_many`; siblings sharing all but one decision
        are batched through the tensor event loop and contention
        fixed point (:mod:`repro.core.frontier`).
        """
        return self.engine.evaluate_frontier(
            batch, serialized=serialized, check_exclusive=check_exclusive
        )

    def evaluate_scratch(
        self,
        assignments: Sequence[Sequence[str]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
    ) -> EvaluationResult:
        """Reference from-scratch evaluation (no caches, no reuse).

        The engine's differential baseline: every optimization behind
        :meth:`evaluate` must reproduce this bit-for-bit (enforced by
        ``tests/core/test_evalcache.py`` and the PR-3 verifier).
        """
        (
            t0,
            bw,
            stream,
            accel_id,
            lead_out,
            lead_in,
            prev_accel_id,
        ) = self._build_items(assignments)
        n_items = len(t0)
        slow = np.ones(n_items)
        contention_free = serialized or isinstance(
            self.contention_model, NoContentionModel
        )

        start = np.zeros(n_items)
        end = np.zeros(n_items)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            self._timeline(
                t0,
                slow,
                stream,
                accel_id,
                lead_out,
                lead_in,
                prev_accel_id,
                serialized,
                start,
                end,
            )
            if contention_free:
                break
            new_slow = self._slowdowns(
                t0, bw, stream, accel_id, start, end, slow
            )
            if np.max(np.abs(new_slow - slow)) < self.tolerance:
                slow = new_slow
                self._timeline(
                    t0,
                    slow,
                    stream,
                    accel_id,
                    lead_out,
                    lead_in,
                    prev_accel_id,
                    serialized,
                    start,
                    end,
                )
                break
            slow = new_slow

        if (
            check_exclusive
            and not serialized
            and not self.resource_constrained
        ):
            # the resource-constrained timeline cannot overlap a DSA
            # structurally; Eq. 9 only guards the naive chain timeline
            self._check_eq9(stream, accel_id, start, end)

        per_dnn = tuple(
            float(end[stream == n].max()) for n in range(len(self.profiles))
        )
        makespan = float(end.max()) if n_items else 0.0
        energy_j = None
        if self.accel_power_w:
            power = np.array(
                [self.accel_power_w.get(a, 0.0) for a in self._accel_names]
            )
            energy_j = float(((end - start) * power[accel_id]).sum())
        objective = self._objective(per_dnn, serialized, energy_j)
        names = self._accel_names
        return EvaluationResult(
            per_dnn_time=per_dnn,
            objective=objective,
            makespan=makespan,
            energy_j=energy_j,
            fixed_point_iterations=iterations,
            _item_builder=lambda: tuple(
                self._item(
                    i, stream, accel_id, start, end, t0, slow, bw, names
                )
                for i in range(n_items)
            ),
        )

    # ------------------------------------------------------------------
    def _timeline(
        self,
        t0: np.ndarray,
        slow: np.ndarray,
        stream: np.ndarray,
        accel_id: np.ndarray,
        lead_out: np.ndarray,
        lead_in: np.ndarray,
        prev_accel_id: np.ndarray,
        serialized: bool,
        start: np.ndarray,
        end: np.ndarray,
    ) -> None:
        """Resource-constrained item timeline (Eqs. 4-6 plus Eq. 9).

        Items of one stream chain back-to-back; each accelerator
        executes one item at a time, so an item whose DSA is busy with
        another stream queues until it frees up -- the behaviour of
        the runtime's per-DSA queues.  A transition's flush occupies
        the source DSA and its load the destination DSA, mirroring the
        explicit flush/load tasks the executor creates.  Under
        ``serialized`` the streams run one after the other with
        transitions as plain delays.
        """
        n_streams = len(self.profiles)
        chains = [np.flatnonzero(stream == n) for n in range(n_streams)]
        if serialized or not self.resource_constrained:
            t = 0.0
            for n in range(n_streams):
                if not serialized:
                    t = 0.0
                for i in chains[n]:
                    t += lead_out[i] + lead_in[i]
                    start[i] = t
                    t += t0[i] * slow[i]
                    end[i] = t
            return

        pointer = [0] * n_streams
        ready = [0.0] * n_streams
        accel_avail: dict[int, float] = {}
        groups_per = [len(p) for p in self.profiles]
        upstreams: dict[int, list[int]] = {}
        for up, down in self.pipeline:
            upstreams.setdefault(down, []).append(up)

        def plan(n: int) -> tuple[float, float, int] | None:
            """(start, became-ready, item) for stream n's next item,
            or None while a pipeline dependency is unscheduled."""
            i = chains[n][pointer[n]]
            item_ready = ready[n]
            if n in upstreams and pointer[n] % groups_per[n] == 0:
                rep = pointer[n] // groups_per[n]
                for up in upstreams[n]:
                    up_idx = (rep + 1) * groups_per[up] - 1
                    if up_idx >= len(chains[up]):
                        continue  # upstream runs fewer frames
                    if pointer[up] <= up_idx:
                        return None
                    item_ready = max(item_ready, end[chains[up][up_idx]])
            if lead_out[i] > 0 or lead_in[i] > 0:
                # the flush starts right when the predecessor ends: in
                # the runtime it is queued with that early ready time
                # and wins FCFS on the (just-freed) source DSA, so it
                # never waits behind later-arriving work
                flush_end = item_ready + lead_out[i]
                load_start = max(
                    flush_end, accel_avail.get(int(accel_id[i]), 0.0)
                )
                item_ready = load_start + lead_in[i]
                candidate = item_ready
            else:
                candidate = max(
                    item_ready, accel_avail.get(int(accel_id[i]), 0.0)
                )
            return candidate, item_ready, int(i)

        remaining = sum(len(c) for c in chains)
        while remaining:
            best_n, best_key = -1, (float("inf"), float("inf"), -1)
            for n in range(n_streams):
                if pointer[n] >= len(chains[n]):
                    continue
                planned = plan(n)
                if planned is None:
                    continue
                candidate, item_ready, _i = planned
                # ties on start time go to the item that became ready
                # first -- the runtime's FCFS submission-queue policy
                key = (candidate, item_ready, n)
                if key < best_key:
                    best_n, best_key = n, key
            planned = plan(best_n)
            assert planned is not None
            best_start, _ready, i = planned
            # commit: the flush occupies the source DSA for its span;
            # the item (including its load) then occupies its own DSA
            if lead_out[i] > 0 or lead_in[i] > 0:
                src_accel = int(prev_accel_id[i])
                flush_end = ready[best_n] + lead_out[i]
                accel_avail[src_accel] = max(
                    accel_avail.get(src_accel, 0.0), flush_end
                )
            start[i] = best_start
            end[i] = best_start + t0[i] * slow[i]
            ready[best_n] = end[i]
            accel_avail[int(accel_id[i])] = end[i]
            pointer[best_n] += 1
            remaining -= 1

    def _slowdowns(
        self,
        t0: np.ndarray,
        bw: np.ndarray,
        stream: np.ndarray,
        accel_id: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        previous: np.ndarray,
    ) -> np.ndarray:
        """Contention-interval slowdown per item (Eqs. 7-8).

        Intervals are delimited by every item start/end; within one
        interval the active set is fixed, so each active item sees the
        cumulative external traffic of the others.
        """
        bounds = np.unique(np.concatenate([start, end]))
        a, b = bounds[:-1], bounds[1:]
        dur = b - a
        keep = dur > 1e-15
        a, b, dur = a[keep], b[keep], dur[keep]
        # active[k, i]: item i runs during interval k
        active = (start[None, :] <= a[:, None] + 1e-15) & (
            end[None, :] >= b[:, None] - 1e-15
        )
        total_bw = active @ bw
        n_clients = active.sum(axis=1)
        ext = np.where(active, total_bw[:, None] - bw[None, :], 0.0)
        own = np.broadcast_to(bw[None, :], active.shape)
        s = np.ones(active.shape)
        mask = active & (ext > 0)
        if mask.any():
            s[mask] = self.contention_model.slowdown_bulk(
                own[mask],
                ext[mask],
                np.broadcast_to(n_clients[:, None], active.shape)[mask],
            )
        weighted = (active * dur[:, None] * s).sum(axis=0)
        covered = (active * dur[:, None]).sum(axis=0)
        new = np.where(covered > 0, weighted / np.maximum(covered, 1e-30), 1.0)
        # light damping stabilizes the fixed point when slowdowns
        # shift the overlap structure between iterations
        return 0.25 * previous + 0.75 * new

    def _check_eq9(
        self,
        stream: np.ndarray,
        accel_id: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
    ) -> None:
        """Reject same-accelerator oversubscription (Eq. 9).

        The *total* time items of different streams overlap on any one
        accelerator must stay within epsilon of the round makespan --
        small handoff misalignments pass (the runtime absorbs them by
        briefly queueing); structural double-booking of a DSA does not.
        """
        makespan = float(end.max()) if len(end) else 0.0
        allowed = self.epsilon_makespan_frac * makespan
        n = len(stream)
        # vectorized pairwise overlaps
        ov = np.minimum(end[:, None], end[None, :]) - np.maximum(
            start[:, None], start[None, :]
        )
        cross = (stream[:, None] != stream[None, :]) & (
            accel_id[:, None] == accel_id[None, :]
        )
        np.fill_diagonal(cross, False)
        ov = np.where(cross, np.maximum(ov, 0.0), 0.0)
        for a in np.unique(accel_id):
            on_a = accel_id == a
            total = float(ov[np.ix_(on_a, on_a)].sum()) / 2.0
            if total > allowed:
                raise ScheduleInfeasible(
                    f"streams overlap {total:.2e}s in total on "
                    f"accelerator {self._accel_names[int(a)]!r} "
                    f"(allowed {allowed:.2e}s, Eq. 9)"
                )

    def _objective(
        self,
        per_dnn: tuple[float, ...],
        serialized: bool = False,
        energy_j: float | None = None,
    ) -> float:
        if self.objective == "energy":
            assert energy_j is not None
            return energy_j
        if self.objective == "latency":
            return max(per_dnn)  # Eq. 11
        # Eq. 10 maximizes the sum of stream rates.  The paper can use
        # per-stream completion times because Eq. 9 keeps streams on
        # disjoint accelerators; our runtime restarts every stream at
        # each round boundary, so the *sustained* rate of stream n is
        # repeats_n / round_time for all streams -- maximizing the rate
        # sum is then total frames over the round makespan.  (Without
        # this, a stream that finishes early by time-sharing a DSA
        # would be credited a rate it cannot sustain.)
        round_time = max(per_dnn)
        if round_time <= 0:
            return float("-inf")
        return -sum(self.repeats) / round_time

    def _item(
        self,
        i: int,
        stream: np.ndarray,
        accel_id: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        t0: np.ndarray,
        slow: np.ndarray,
        bw: np.ndarray,
        accel_names: Sequence[str],
    ) -> ItemTiming:
        n = int(stream[i])
        before = int((stream[:i] == n).sum())
        groups = len(self.profiles[n])
        return ItemTiming(
            dnn=n,
            rep=before // groups,
            group=before % groups,
            accel=accel_names[int(accel_id[i])],
            start=float(start[i]),
            end=float(end[i]),
            standalone_s=float(t0[i]),
            slowdown=float(slow[i]),
            req_bw=float(bw[i]),
        )

    # -- bounds for branch & bound ------------------------------------
    def busy_times(
        self, dnn: int, assignment: Sequence[str]
    ) -> dict[str, float]:
        """Total execution time stream ``dnn`` occupies each DSA.

        Each accelerator runs one item at a time, so the per-DSA sums
        across streams lower-bound the concurrent makespan -- a much
        tighter admissible bound than the per-stream chain whenever
        two streams compete for the same DSA.
        """
        profile = self.profiles[dnn]
        busy: dict[str, float] = {}
        for g, accel in enumerate(assignment):
            t = profile.groups[g].time_s.get(accel)
            if t is None:
                return {accel: float("inf")}
            busy[accel] = busy.get(accel, 0.0) + t
        reps = self.repeats[dnn]
        return {a: t * reps for a, t in busy.items()}

    def chain_energy(self, dnn: int, assignment: Sequence[str]) -> float:
        """Contention-free active energy of one stream (admissible LB:
        contention only stretches execution, which only adds energy)."""
        profile = self.profiles[dnn]
        total = 0.0
        for g, accel in enumerate(assignment):
            t = profile.groups[g].time_s.get(accel)
            if t is None:
                return float("inf")
            total += t * self.accel_power_w.get(accel, 0.0)
        return total * self.repeats[dnn]

    def chain_time(self, dnn: int, assignment: Sequence[str]) -> float:
        """Contention-free chained time of one stream (admissible LB)."""
        profile = self.profiles[dnn]
        total = 0.0
        for g, accel in enumerate(assignment):
            gp = profile.groups[g]
            t = gp.time_s.get(accel)
            if t is None:
                return float("inf")
            total += t
            if g > 0 and assignment[g - 1] != accel and self.include_transitions:
                total += profile.transition(g - 1, assignment[g - 1], accel)
        return total * self.repeats[dnn]
