"""Static schedule cache (paper Section 3.5, the *static* path).

For autonomous systems with fixed input devices and a known set of
control-flow graphs, the paper predetermines optimal schedules offline
and toggles them at runtime when the CFG changes -- no solver in the
loop.  :class:`ScheduleCache` provides exactly that: it keys schedules
by the workload signature (streams, repeats, pipeline, objective,
platform, grouping), solves on first request, and answers instantly
afterwards; the cache round-trips through JSON so a deployment ships
its schedules alongside its engines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.core.haxconn import HaXCoNN, ScheduleResult
from repro.core.schedule import DNNSchedule, Schedule
from repro.core.workload import Workload


def workload_signature(workload: Workload, scheduler: HaXCoNN) -> str:
    """Deterministic key: everything that shapes the optimal schedule.

    Besides the workload itself this covers the scheduler's cost-model
    configuration -- a cache file produced under one configuration must
    not serve a scheduler with a different one.
    """
    parts = [
        scheduler.platform.name,
        str(scheduler.max_groups),
        str(scheduler.max_transitions),
        str(scheduler.include_transitions),
        str(scheduler.resource_constrained),
        f"{scheduler.fallback_margin:g}",
        f"{scheduler.epsilon_makespan_frac:g}",
        type(scheduler.contention_model).__name__,
        workload.objective,
        ";".join(
            f"{'+'.join(d.models)}x{d.repeats}" for d in workload.dnns
        ),
        ",".join(f"{u}->{v}" for u, v in workload.pipeline),
    ]
    return "|".join(parts)


class ScheduleCache:
    """Solve-once, toggle-forever schedule store."""

    def __init__(self, scheduler: HaXCoNN) -> None:
        self.scheduler = scheduler
        self._store: dict[str, Schedule] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, workload: Workload) -> bool:
        return workload_signature(workload, self.scheduler) in self._store

    def __iter__(self) -> Iterator[str]:
        return iter(self._store)

    # ------------------------------------------------------------------
    def get(self, workload: Workload) -> ScheduleResult:
        """Return the optimal schedule, solving only on first request.

        Cached schedules are re-materialized against a freshly built
        formulation so the returned result carries predictions and is
        directly executable by :func:`repro.runtime.run_schedule`.
        """
        key = workload_signature(workload, self.scheduler)
        cached = self._store.get(key)
        if cached is None:
            self.misses += 1
            result = self.scheduler.schedule(workload)
            self._store[key] = result.schedule
            return result
        self.hits += 1
        formulation, _ = self.scheduler.build_formulation(workload)
        return self.scheduler.result_from_assignments(
            workload,
            formulation,
            [s.assignment for s in cached],
            scheduler_name=str(cached.meta.get("scheduler", "cached")),
            serialized=cached.serialized,
        )

    def put(self, workload: Workload, schedule: Schedule) -> None:
        """Install an externally-obtained schedule for a workload.

        The serving layer's anytime path uses this to publish a
        converged D-HaX-CoNN schedule so later occurrences of the mix
        toggle instantly; neither a hit nor a miss is counted.
        """
        key = workload_signature(workload, self.scheduler)
        self._store[key] = schedule

    def signature(self, workload: Workload) -> str:
        """This cache's key for ``workload``."""
        return workload_signature(workload, self.scheduler)

    def stats(self) -> dict[str, float]:
        """Traffic counters plus the scheduler's evaluation-engine
        counters, one flat dict for serving/experiment summaries."""
        # deferred: repro.runtime pulls in the simulator stack
        from repro.runtime.metrics import hit_rate

        out: dict[str, float] = {
            "size": float(len(self._store)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": hit_rate(self.hits, self.misses),
        }
        for key, value in self.scheduler.eval_counters.as_dict().items():
            out[f"eval_{key}"] = value
        return out

    def warm_starts(
        self, workload: Workload, *, limit: int = 2
    ) -> list[tuple[str, list[tuple[str, ...]]]]:
        """Warm-start seeds for ``workload`` composed from similar mixes.

        A stream that appeared in any cached concurrent schedule --
        under a *different* mix -- contributes its assignment there as
        a fragment; a seed assembles one fragment per stream.  The
        portfolio solver validates each seed against the current
        domains (grouping or transition-budget changes simply drop
        it), so stale fragments are harmless.  Returns up to ``limit``
        labeled seeds in ``schedule(warm_starts=...)`` shape.
        """
        fragments: dict[str, list[tuple[str, ...]]] = {}
        for schedule in self._store.values():
            if schedule.serialized:
                continue  # uniform-GPU fragments add nothing over gpu-only
            for stream in schedule.per_dnn:
                key = stream.dnn_name.split("@")[0]
                bucket = fragments.setdefault(key, [])
                if stream.assignment not in bucket:
                    bucket.append(stream.assignment)

        seeds: list[tuple[str, list[tuple[str, ...]]]] = []
        keys = [d.name.split("@")[0] for d in workload.dnns]
        for rank in range(max(0, limit)):
            chosen: list[tuple[str, ...]] = []
            fresh = rank == 0
            for key in keys:
                bucket = fragments.get(key)
                if not bucket:
                    return seeds  # a stream never seen: no composition
                index = min(rank, len(bucket) - 1)
                fresh = fresh or index == rank
                chosen.append(bucket[index])
            if not fresh:  # every bucket exhausted: would repeat rank-1
                break
            seeds.append((f"cache-{rank}", chosen))
        return seeds

    def precompute(self, workloads: list[Workload]) -> None:
        """Offline phase: solve every CFG the deployment can reach."""
        for workload in workloads:
            self.get(workload)

    # -- persistence -----------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {
            key: {
                "serialized": schedule.serialized,
                "streams": [
                    {
                        "dnn": s.dnn_name,
                        "assignment": list(s.assignment),
                    }
                    for s in schedule.per_dnn
                ],
            }
            for key, schedule in self._store.items()
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path, scheduler: HaXCoNN) -> "ScheduleCache":
        cache = cls(scheduler)
        payload = json.loads(Path(path).read_text())
        for key, entry in payload.items():
            cache._store[key] = Schedule(
                per_dnn=tuple(
                    DNNSchedule(
                        dnn_name=s["dnn"],
                        assignment=tuple(s["assignment"]),
                    )
                    for s in entry["streams"]
                ),
                serialized=bool(entry["serialized"]),
                meta={"scheduler": "cached"},
            )
        return cache
