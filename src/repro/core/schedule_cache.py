"""Static schedule cache (paper Section 3.5, the *static* path).

For autonomous systems with fixed input devices and a known set of
control-flow graphs, the paper predetermines optimal schedules offline
and toggles them at runtime when the CFG changes -- no solver in the
loop.  :class:`ScheduleCache` provides exactly that: it keys schedules
by the workload signature (streams, repeats, pipeline, objective,
platform, grouping), solves on first request, and answers instantly
afterwards; the cache round-trips through JSON so a deployment ships
its schedules alongside its engines.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from repro.core.haxconn import HaXCoNN, ScheduleResult
from repro.core.schedule import DNNSchedule, Schedule
from repro.core.workload import Workload

if TYPE_CHECKING:  # deferred: solve_store is storage-only
    from repro.core.solve_store import SolveStore


def workload_signature(workload: Workload, scheduler: HaXCoNN) -> str:
    """Deterministic key: everything that shapes the optimal schedule.

    Besides the workload itself this covers the scheduler's cost-model
    configuration -- a cache file produced under one configuration must
    not serve a scheduler with a different one.
    """
    parts = [
        scheduler.platform.name,
        str(scheduler.max_groups),
        str(scheduler.max_transitions),
        str(scheduler.include_transitions),
        str(scheduler.resource_constrained),
        f"{scheduler.fallback_margin:g}",
        f"{scheduler.epsilon_makespan_frac:g}",
        type(scheduler.contention_model).__name__,
        workload.objective,
        ";".join(
            f"{'+'.join(d.models)}x{d.repeats}" for d in workload.dnns
        ),
        ",".join(f"{u}->{v}" for u, v in workload.pipeline),
    ]
    return "|".join(parts)


def schedule_to_payload(schedule: Schedule) -> dict[str, Any]:
    """JSON-serializable form of a schedule (the solve-store shape)."""
    return {
        "serialized": schedule.serialized,
        "streams": [
            {"dnn": s.dnn_name, "assignment": list(s.assignment)}
            for s in schedule.per_dnn
        ],
    }


def schedule_from_payload(payload: Mapping[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_payload`.

    Re-materialized schedules carry ``scheduler="cached"`` provenance,
    exactly like entries loaded by :meth:`ScheduleCache.load`.
    """
    return Schedule(
        per_dnn=tuple(
            DNNSchedule(
                dnn_name=s["dnn"], assignment=tuple(s["assignment"])
            )
            for s in payload["streams"]
        ),
        serialized=bool(payload["serialized"]),
        meta={"scheduler": "cached"},
    )


class ScheduleCache:
    """Solve-once, toggle-forever schedule store.

    Beyond local solve-and-memoize, the cache speaks the portfolio's
    ``SharedEvalState`` piggyback protocol (:meth:`export_delta` /
    :meth:`merge`) so serving shards exchange published schedules at
    epoch boundaries, and it can sit on top of a persistent
    :class:`~repro.core.solve_store.SolveStore` so schedules survive
    the process (:meth:`attach_store`).
    """

    def __init__(self, scheduler: HaXCoNN) -> None:
        self.scheduler = scheduler
        self._store: dict[str, Schedule] = {}
        self.hits = 0
        self.misses = 0
        #: hits answered by entries that came from the attached store
        self.store_hits = 0
        #: signatures adopted from the persistent store
        self._from_store: set[str] = set()
        #: locally-published (sig, payload) pairs not yet gossiped
        self._pending: list[tuple[str, dict[str, Any]]] = []
        #: persistent write-through target (None = in-memory only)
        self._write_store: "SolveStore | None" = None
        #: optional learned warm-start ranker
        #: ``(workload, model key, assignment) -> score`` (higher is
        #: better); see :meth:`repro.learn.guide.SearchGuide.
        #: fragment_ranker`.  ``None`` scores every fragment 0.0, so
        #: ordering falls back to the content sha alone.
        self.ranker: (
            Callable[[Workload, str, tuple[str, ...]], float] | None
        ) = None

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, workload: Workload) -> bool:
        return workload_signature(workload, self.scheduler) in self._store

    def __iter__(self) -> Iterator[str]:
        return iter(self._store)

    # ------------------------------------------------------------------
    def get(self, workload: Workload) -> ScheduleResult:
        """Return the optimal schedule, solving only on first request.

        Cached schedules are re-materialized against a freshly built
        formulation so the returned result carries predictions and is
        directly executable by :func:`repro.runtime.run_schedule`.
        """
        key = workload_signature(workload, self.scheduler)
        cached = self._store.get(key)
        if cached is None:
            self.misses += 1
            result = self.scheduler.schedule(workload)
            self._publish(key, result.schedule)
            return result
        self.hits += 1
        if key in self._from_store:
            self.store_hits += 1
        formulation, _ = self.scheduler.build_formulation(workload)
        # hits always dispatch with "cached" provenance, whatever meta
        # the installed schedule carried: a cache toggle is a toggle
        # (and the serving layer's first-HaX-CoNN telemetry counts it
        # as solver-certified knowledge serving the mix)
        return self.scheduler.result_from_assignments(
            workload,
            formulation,
            [s.assignment for s in cached],
            scheduler_name="cached",
            serialized=cached.serialized,
        )

    def put(self, workload: Workload, schedule: Schedule) -> None:
        """Install an externally-obtained schedule for a workload.

        The serving layer's anytime path uses this to publish a
        converged D-HaX-CoNN schedule so later occurrences of the mix
        toggle instantly; neither a hit nor a miss is counted.
        """
        key = workload_signature(workload, self.scheduler)
        self._publish(key, schedule)

    def _publish(self, key: str, schedule: Schedule) -> None:
        """Install an entry and queue it for gossip / write-through."""
        payload = schedule_to_payload(schedule)
        self._store[key] = schedule
        self._pending.append((key, payload))
        if self._write_store is not None:
            self._write_store.append_schedule(key, payload)

    def signature(self, workload: Workload) -> str:
        """This cache's key for ``workload``."""
        return workload_signature(workload, self.scheduler)

    # -- persistent store / cross-shard gossip -------------------------
    def attach_store(self, store: "SolveStore") -> int:
        """Adopt every schedule the store holds; return the count.

        A writable store also becomes the write-through target: every
        subsequently published schedule is appended (content-addressed,
        so repeat publications are free).  Adopted entries answer later
        lookups as ordinary hits and additionally bump ``store_hits``.
        """
        adopted = 0
        for sig, payload in sorted(store.schedules().items()):
            if sig not in self._store:
                self._store[sig] = schedule_from_payload(payload)
                self._from_store.add(sig)
                adopted += 1
        if not store.readonly:
            self._write_store = store
        return adopted

    def export_delta(
        self, limit: int = 256
    ) -> tuple[tuple[str, dict[str, Any]], ...]:
        """Drain up to ``limit`` locally-published entries for peers.

        The ``SharedEvalState`` shape the portfolio's epoch sync uses:
        items are plain picklable tuples, bounded per epoch, and the
        remainder rides the next sync.
        """
        if not self._pending:
            return ()
        out = tuple(self._pending[:limit])
        del self._pending[: len(out)]
        return out

    def merge(
        self, delta: Sequence[tuple[str, Mapping[str, Any]]]
    ) -> None:
        """Adopt peer-published schedules; never re-exported (no echo
        loops), never counted as local hits or misses."""
        for sig, payload in delta:
            if sig not in self._store:
                self._store[sig] = schedule_from_payload(payload)

    def adopt_stored(
        self, delta: Sequence[tuple[str, Mapping[str, Any]]]
    ) -> None:
        """Like :meth:`merge`, but for entries that originate in the
        persistent solve store (the fleet seeds workers this way so
        they never open the store file themselves); lookups these
        entries answer additionally bump ``store_hits``."""
        for sig, payload in delta:
            if sig not in self._store:
                self._store[sig] = schedule_from_payload(payload)
                self._from_store.add(sig)

    def stats(self) -> dict[str, float]:
        """Traffic counters plus the scheduler's evaluation-engine
        counters, one flat dict for serving/experiment summaries."""
        # deferred: repro.runtime pulls in the simulator stack
        from repro.runtime.metrics import hit_rate

        out: dict[str, float] = {
            "size": float(len(self._store)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": hit_rate(self.hits, self.misses),
            "store_hits": float(self.store_hits),
        }
        for key, value in self.scheduler.eval_counters.as_dict().items():
            out[f"eval_{key}"] = value
        return out

    @staticmethod
    def _fragment_sha(assignment: tuple[str, ...]) -> str:
        """Content address of one fragment (the ordering tie-break)."""
        blob = json.dumps(list(assignment), separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def warm_starts(
        self, workload: Workload, *, limit: int = 2
    ) -> list[tuple[str, list[tuple[str, ...]]]]:
        """Warm-start seeds for ``workload`` composed from similar mixes.

        A stream that appeared in any cached concurrent schedule --
        under a *different* mix -- contributes its assignment there as
        a fragment; a seed assembles one fragment per stream.  The
        portfolio solver validates each seed against the current
        domains (grouping or transition-budget changes simply drop
        it), so stale fragments are harmless.  Returns up to ``limit``
        labeled seeds in ``schedule(warm_starts=...)`` shape.

        Candidate ordering is *explicitly keyed*, never an artifact of
        store iteration order: each bucket sorts by ``(-predicted
        quality, fragment sha)``, where quality comes from the learned
        :attr:`ranker` (0.0 without one, so the content sha alone
        decides).  The same cache contents therefore produce the same
        seeds after any adoption order, gossip interleaving, or store
        compaction -- the property the provenance regression test
        pins.
        """
        fragments: dict[str, list[tuple[str, ...]]] = {}
        for sig in sorted(self._store):
            schedule = self._store[sig]
            if schedule.serialized:
                continue  # uniform-GPU fragments add nothing over gpu-only
            for stream in schedule.per_dnn:
                key = stream.dnn_name.split("@")[0]
                bucket = fragments.setdefault(key, [])
                if stream.assignment not in bucket:
                    bucket.append(stream.assignment)
        for key, bucket in fragments.items():
            scores: dict[tuple[str, ...], float] = {}
            for assignment in bucket:
                score = 0.0
                if self.ranker is not None:
                    try:
                        score = float(self.ranker(workload, key, assignment))
                    except Exception:
                        score = 0.0  # a broken ranker must not block seeds
                scores[assignment] = score
            bucket.sort(
                key=lambda a: (-scores[a], self._fragment_sha(a))
            )

        seeds: list[tuple[str, list[tuple[str, ...]]]] = []
        keys = [d.name.split("@")[0] for d in workload.dnns]
        for rank in range(max(0, limit)):
            chosen: list[tuple[str, ...]] = []
            fresh = rank == 0
            for key in keys:
                bucket = fragments.get(key)
                if not bucket:
                    return seeds  # a stream never seen: no composition
                index = min(rank, len(bucket) - 1)
                fresh = fresh or index == rank
                chosen.append(bucket[index])
            if not fresh:  # every bucket exhausted: would repeat rank-1
                break
            seeds.append((f"cache-{rank}", chosen))
        return seeds

    def precompute(self, workloads: list[Workload]) -> None:
        """Offline phase: solve every CFG the deployment can reach."""
        for workload in workloads:
            self.get(workload)

    # -- persistence -----------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Snapshot to JSON (v2: entries plus traffic counters)."""
        payload = {
            "version": 2,
            "stats": {
                "hits": self.hits,
                "misses": self.misses,
                "store_hits": self.store_hits,
            },
            "entries": {
                key: schedule_to_payload(schedule)
                for key, schedule in self._store.items()
            },
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path, scheduler: HaXCoNN) -> "ScheduleCache":
        """Restore a snapshot (v1 flat files still load cleanly)."""
        cache = cls(scheduler)
        payload = json.loads(Path(path).read_text())
        if "entries" in payload and payload.get("version") == 2:
            entries = payload["entries"]
            stats = payload.get("stats", {})
            cache.hits = int(stats.get("hits", 0))
            cache.misses = int(stats.get("misses", 0))
            cache.store_hits = int(stats.get("store_hits", 0))
        else:  # v1: the file *is* the entry dict
            entries = payload
        for key, entry in entries.items():
            cache._store[key] = schedule_from_payload(entry)
        return cache
