"""Frontier-batched schedule evaluation (lockstep across B&B siblings).

When branch-and-bound expands a node whose children are leaves, the
children form a *frontier*: sibling assignments that share every
decision except the branched stream's.  Each sibling still pays a full
contention fixed point (Eqs. 7-8) wrapped around the FCFS event-loop
timeline (Eqs. 4-6), and the scalar engine evaluates them one at a
time.  This module evaluates the whole frontier in **lockstep**: one
NumPy program whose arrays carry a leading sibling axis ``B``, so the
per-commit Python interpreter cost -- the dominant term in the scalar
event loop -- is paid once per frontier instead of once per sibling.

Why lockstep is possible: the event loop commits exactly one item per
iteration, every sibling schedules the same number of items (the
workload geometry is fixed by the formulation; only *which* DSA each
item runs on varies), and no sibling's decisions feed another's.  So
``n_items`` rounds of "plan every stream, pick the FCFS winner,
commit" advance every sibling by exactly one item per round, and each
round is a handful of ``(B, S)``-shaped tensor ops.

What batches and what stays scalar (the Eq. 7-8 split):

* **batched** -- the candidate-start planning algebra (Eq. 4-6 ready /
  availability maxima), the FCFS winner selection (lexicographic
  ``(c, r, n)`` minimum), the contention-interval construction (the
  Eq. 7 overlap structure: row-wise sorted bounds, durations, the
  ``active`` incidence tensor), and the Eq. 8 weighted-average
  slowdown projection with per-sibling damping and convergence masks.
* **scalar, per sibling** -- the contention-model kernel itself
  (Eq. 7's slowdown matrix), because it is cached under the discrete
  overlap structure and the bandwidth vector in ``EvalEngine._s_cache``
  and typically *hits* (siblings share structures); on a miss the
  engine's own ``_s_matrix`` runs, so both paths execute literally the
  same code.  Final per-DNN maxima, energy, and the objective also
  stay scalar: they are a few microseconds per sibling and reusing
  the reference's exact expressions keeps bit-identity trivial.

Bit-identity argument (the contract every caller relies on):

* Planning arithmetic is the reference expression with ``+ 0.0`` /
  ``max(x, x)`` no-ops in the no-transition case; every quantity in
  the timeline is ``>= +0.0`` (times, leads, durations -- there is no
  subtraction), so adding ``+0.0`` and equal-value maxima preserve
  bit patterns exactly (IEEE-754: only ``-0.0`` could differ, and
  none can occur).
* The FCFS tie-break -- reference: ascending scan keeping the first
  strict improvement on ``(c, r)`` -- equals the lexicographic
  minimum with lowest stream id on ties, computed here as masked row
  minima plus ``argmax`` on the winner mask (first ``True`` wins).
* Reductions that feed results are row-wise over the *last* axis or
  sequential over a middle axis with ``+0.0`` rows interleaved;
  ``tests/core/test_frontier.py`` certifies the end-to-end claim
  field-by-field against ``evaluate_scratch`` on 60+ seeds, and the
  fuzz oracle re-checks it per scenario.

Fallbacks: serialized / non-resource-constrained formulations,
pipelines, empty workloads, and tiny frontiers fall back to the scalar
engine (``EvalEngine.evaluate`` per member), whose byte-identity is
already certified -- so ``evaluate_frontier`` is *always* exact, and
lockstep is purely a throughput decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.contention.base import NoContentionModel

if TYPE_CHECKING:  # deferred: evalcache imports create a cycle otherwise
    from repro.core.evalcache import EvalEngine
    from repro.core.formulation import EvaluationResult

#: below this many to-compute members the scalar engine (memo + prefix
#: replay) beats the lockstep setup cost; measured in bench_eval
MIN_LOCKSTEP = 6

#: below this batch width the per-iteration row-compression (dropping
#: converged members from timeline passes) costs more than it saves;
#: narrow batches just recompute frozen rows (idempotent: frozen
#: slowdowns reproduce the same start/end bits)
_COMPRESS_MIN = 64

_INF = float("inf")


def evaluate_frontier(
    engine: "EvalEngine",
    batch: Sequence[Sequence[Sequence[str]]],
    *,
    serialized: bool = False,
    check_exclusive: bool = True,
) -> list["EvaluationResult | Exception"]:
    """Evaluate a frontier; results match per-member ``evaluate`` bit
    for bit, with infeasible members returned as exception instances
    in place (the ``evaluate_many`` convention).

    *Every* per-member exception is captured in place, not just
    :class:`ScheduleInfeasible` -- a reference ``KeyError`` from an
    unprofiled transition must neither abort the rest of the batch
    nor leak out of the solver's prewarm hook (which would abort a
    search the scalar path would have continued).  Only
    ``ScheduleInfeasible`` is memoized as a "bad" entry, exactly like
    the scalar engine, so a later scalar call re-raises the same
    reference exception untouched."""
    from repro.core.formulation import ScheduleInfeasible

    c = engine.counters
    c.frontier_batches += 1
    c.frontier_members += len(batch)
    keys = [tuple(tuple(a) for a in m) for m in batch]
    out: list["EvaluationResult | Exception | None"] = [None] * len(batch)

    # memo pass + in-frontier dedup: `pending` maps each distinct
    # unmemoized memo-key to every slot waiting on it
    pending: dict[Any, list[int]] = {}
    for j, key in enumerate(keys):
        memo_key = (key, serialized, check_exclusive)
        slots = pending.get(memo_key)
        if slots is not None:  # duplicate of an in-flight member
            c.evals += 1
            c.memo_hits += 1
            slots.append(j)
            continue
        hit = engine.memo.get(memo_key)
        if hit is not None:
            c.evals += 1
            c.memo_hits += 1
            if hit[0] == "bad":
                out[j] = ScheduleInfeasible(hit[1])
            else:
                out[j] = engine._result_from_memo(hit, key, serialized)
            continue
        pending[memo_key] = [j]

    if pending:
        event_loop = not serialized and engine.f.resource_constrained
        lockstep_ok = (
            event_loop
            and not engine._upstreams
            and engine._n_items > 0
            and len(pending) >= MIN_LOCKSTEP
        )
        if lockstep_ok:
            c.frontier_lockstep += len(pending)
            computed = _lockstep(
                engine,
                [mk[0] for mk in pending],
                serialized,
                check_exclusive,
            )
        else:
            c.frontier_fallback += len(pending)
            computed = []
            for memo_key in pending:
                try:
                    computed.append(
                        engine.evaluate(
                            memo_key[0],
                            serialized=serialized,
                            check_exclusive=check_exclusive,
                        )
                    )
                except ValueError:
                    raise  # malformed member: a caller bug, not a result
                except Exception as exc:  # noqa: BLE001 -- in-place
                    computed.append(exc)
        for slots, result in zip(pending.values(), computed):
            for j in slots:
                out[j] = result
    return out  # type: ignore[return-value]


def _lockstep(
    engine: "EvalEngine",
    keys: list[Any],
    serialized: bool,
    check_exclusive: bool,
) -> list["EvaluationResult | Exception"]:
    """Compute distinct unmemoized members in one lockstep batch."""
    from repro.core.formulation import ScheduleInfeasible

    c = engine.counters
    f = engine.f
    n = engine._n_items
    n_profiles = len(f.profiles)

    # -- gather: per-member item rows, reference exceptions in place
    results: list[Any] = [None] * len(keys)
    live: list[int] = []
    stream_rows: list[list[tuple[np.ndarray, ...]]] = []
    for j, key in enumerate(keys):
        c.evals += 1
        c.memo_misses += 1
        if len(key) != n_profiles:
            raise ValueError(
                f"expected {n_profiles} assignments, got {len(key)}"
            )
        try:
            rows = [
                engine.tensor.stream_items(s, a) for s, a in enumerate(key)
            ]
        except Exception as exc:  # noqa: BLE001 -- captured in place
            if isinstance(exc, ScheduleInfeasible):
                # only infeasibilities memoize; a reference KeyError
                # (unprofiled transition) must re-raise fresh later
                engine.memo.put(
                    (key, serialized, check_exclusive), ("bad", str(exc))
                )
            results[j] = exc
            continue
        live.append(j)
        stream_rows.append(rows)
    if not live:
        return results

    B = len(live)
    # (B, n) data matrices, filled stream-block by stream-block: the
    # members of a frontier share most stream rows (siblings differ in
    # one stream), so each block is one gather from the few unique
    # rows instead of B per-member concatenations
    offsets = engine._offsets
    t0_m = np.empty((B, n))
    bw_m = np.empty((B, n))
    acc_m = np.empty((B, n), dtype=int)
    lo_m = np.empty((B, n))
    li_m = np.empty((B, n))
    prev_m = np.empty((B, n), dtype=int)
    mats = (t0_m, bw_m, acc_m, lo_m, li_m, prev_m)
    for s in range(n_profiles):
        uniq: dict[Any, int] = {}
        take: list[int] = []
        rows_u: list[tuple[np.ndarray, ...]] = []
        for pos, j in enumerate(live):
            a = keys[j][s]
            p = uniq.get(a)
            if p is None:
                p = len(uniq)
                uniq[a] = p
                rows_u.append(stream_rows[pos][s])
            take.append(p)
        sel = np.asarray(take)
        blk = slice(int(offsets[s]), int(offsets[s + 1]))
        for field, mat in enumerate(mats):
            mat[:, blk] = np.stack([r[field] for r in rows_u])[sel]
    inf_col = np.full((B, 1), _INF)
    # lead-out and lead-in ride in one (2, B, n+1) tensor so the
    # planning loop gathers both with a single fancy index; column n
    # is the padding slot closed streams point at, and its +inf leads
    # push closed streams' candidate starts to +inf so they lose the
    # FCFS minimum without a separate open-stream mask
    leads_p = np.stack(
        [
            np.concatenate([lo_m, inf_col], axis=1),
            np.concatenate([li_m, inf_col], axis=1),
        ]
    )
    acc_p = np.concatenate([acc_m, np.zeros((B, 1), dtype=int)], axis=1)
    any_lead = bool((lo_m > 0).any() or (li_m > 0).any())

    ctx = _TimelineCtx(engine, leads_p, acc_p, t0_m, prev_m, any_lead)
    contention_free = serialized or isinstance(
        f.contention_model, NoContentionModel
    )
    start = np.empty((B, n))
    end = np.empty((B, n))
    slow = np.ones((B, n))
    iters = np.zeros(B, dtype=int)

    if contention_free:
        ctx.run(slow, start, end)
        c.timeline_passes += B
        iters[:] = 1
    else:
        bw_bytes = [bw_m[pos].tobytes() for pos in range(B)]
        #: slowdown vector frozen (tolerance met)
        conv = np.zeros(B, dtype=bool)
        #: frozen *and* the post-convergence extra pass has run --
        #: such members' start/end rows are final and drop out of
        #: subsequent timeline passes entirely
        done = np.zeros(B, dtype=bool)
        compress = B >= _COMPRESS_MIN
        for it in range(1, f.max_iterations + 1):
            alive = np.nonzero(~done)[0] if compress else ctx.rows
            sub = ctx if len(alive) == B else ctx.select(alive)
            st = np.empty((len(alive), n))
            en = np.empty((len(alive), n))
            sub.run(slow[alive], st, en)
            c.timeline_passes += len(alive)
            start[alive] = st
            end[alive] = en
            # members already frozen just received their extra pass
            done[alive[conv[alive]]] = True
            if bool(done.all()):
                break
            new = _slowdowns_batch(
                engine, bw_m, bw_bytes, start, end, slow, conv, c
            )
            step = np.abs(new - slow).max(axis=1)
            just = (~conv) & (step < f.tolerance)
            upd = ~conv
            slow[upd] = new[upd]
            iters[just] = it
            conv |= just
        else:
            # iteration budget exhausted: non-converged members keep
            # the arrays of the last in-loop pass (reference: the
            # timeline ran *before* the final slowdown update); those
            # frozen on the last iteration still get the extra pass
            iters[~conv] = f.max_iterations
            pend = np.nonzero(conv & ~done)[0]
            if len(pend):
                sub = ctx.select(pend)
                st = np.empty((len(pend), n))
                en = np.empty((len(pend), n))
                sub.run(slow[pend], st, en)
                c.timeline_passes += len(pend)
                start[pend] = st
                end[pend] = en

    # -- per-member finalization: the reference's exact scalar
    # expressions on contiguous row views (no batched reductions feed
    # results directly, so no reduction-order risk here)
    offsets = engine._offsets
    power = engine.tensor.power
    n_profiles = len(f.profiles)
    for row, j in enumerate(live):
        c.computed_evals += 1
        iterations = int(iters[row])
        c.fp_iterations += iterations
        start_r = start[row]
        end_r = end[row]
        end_list = end_r.tolist()
        per_dnn = tuple(
            max(end_list[offsets[m] : offsets[m + 1]])
            if offsets[m + 1] > offsets[m]
            else float(end_r[offsets[m] : offsets[m + 1]].max())
            for m in range(n_profiles)
        )
        makespan = max(end_list) if n else 0.0
        energy = None
        if f.accel_power_w:
            acc_r = acc_m[row]
            energy = float(((end_r - start_r) * power[acc_r]).sum())
        objective = f._objective(per_dnn, serialized, energy)
        key = keys[j]
        engine.memo.put(
            (key, serialized, check_exclusive),
            ("ok", per_dnn, objective, makespan, energy, iterations),
        )
        arrays = (
            engine._stream_vec,
            acc_m[row],
            start_r,
            end_r,
            t0_m[row],
            slow[row],
            bw_m[row],
        )
        results[j] = engine._result(
            per_dnn, objective, makespan, energy, iterations, arrays
        )
    return results


class _TimelineCtx:
    """Per-frontier immutable inputs for the lockstep event loop."""

    __slots__ = (
        "engine",
        "B",
        "S",
        "n",
        "A",
        "leads_p",
        "acc_p",
        "t0_m",
        "prev_m",
        "any_lead",
        "chain_base",
        "lens",
        "rows",
    )

    def __init__(
        self,
        engine: "EvalEngine",
        leads_p: np.ndarray,
        acc_p: np.ndarray,
        t0_m: np.ndarray,
        prev_m: np.ndarray,
        any_lead: bool,
    ) -> None:
        self.engine = engine
        self.B = len(t0_m)
        self.S = len(engine._chains)
        self.n = engine._n_items
        self.A = len(engine.tensor.names)
        self.leads_p = leads_p
        self.acc_p = acc_p
        self.t0_m = t0_m
        self.prev_m = prev_m
        self.any_lead = any_lead
        self.chain_base = engine._offsets[:-1][None, :]  # (1, S)
        self.lens = np.asarray(engine._lens)[None, :]  # (1, S)
        self.rows = np.arange(self.B)

    def select(self, rows_idx: np.ndarray) -> "_TimelineCtx":
        """Row-subset context (members still needing timeline passes).

        Pure row selection: every per-row computation in :meth:`run`
        is independent of the other rows, so a subset pass produces
        bit-identical rows to a full pass.
        """
        return _TimelineCtx(
            self.engine,
            self.leads_p[:, rows_idx],
            self.acc_p[rows_idx],
            self.t0_m[rows_idx],
            self.prev_m[rows_idx],
            self.any_lead,
        )

    def run(
        self, slow: np.ndarray, start: np.ndarray, end: np.ndarray
    ) -> None:
        """One FCFS event-loop pass for every sibling at once.

        Each round plans every open stream's next item (Eq. 4-6
        candidate starts), picks the per-sibling FCFS winner
        (lexicographic minimum on candidate start, became-ready time,
        stream id -- the reference tie-break), and commits it.  All
        arithmetic matches the scalar loop expression for expression;
        see the module docstring for the ``+0.0`` bit-safety argument.
        """
        B, S, n, A = self.B, self.S, self.n, self.A
        any_lead = self.any_lead
        # flat views + flat index bases: np.take / 1-D fancy writes on
        # raveled buffers are markedly cheaper than 2-D fancy indexing,
        # and values are untouched (pure address arithmetic)
        lo_f = self.leads_p[0].ravel()
        li_f = self.leads_p[1].ravel()
        acc_f = self.acc_p.ravel()
        prev_f = self.prev_m.ravel()
        t0_f = self.t0_m.ravel()
        slow_f = slow.ravel()
        start_f = start.reshape(-1)
        end_f = end.reshape(-1)
        rowp = (np.arange(B) * (n + 1))[:, None]  # (B, 1): padded stride
        rown = np.arange(B) * n
        rowa = np.arange(B) * A
        rows = self.rows
        pointer = np.zeros((B, S), dtype=int)
        ready = np.zeros((B, S))
        avail_f = np.zeros(B * A)
        for _ in range(n):
            i_all = self.chain_base + pointer  # (B, S)
            open_m = pointer < self.lens
            g = rowp + np.where(open_m, i_all, n)  # closed -> pad column
            lo = lo_f.take(g)
            li = li_f.take(g)
            acc = acc_f.take(g)
            fe = ready + lo  # flush end (no-lead: + 0.0, bit-safe)
            ls = np.maximum(fe, avail_f.take(rowa[:, None] + acc))
            cst = ls + li  # candidate start; closed streams get +inf
            if any_lead:
                hl = (lo + li) > 0.0  # exact: leads are >= 0
                r = np.where(hl, cst, ready)
            else:
                # closed streams keep a finite became-ready value, but
                # their +inf candidate start already excludes them
                # from the winner mask below
                r = ready
            best_c = cst.min(axis=1)
            eqc = cst == best_c[:, None]
            rm = np.where(eqc, r, _INF)
            best_r = rm.min(axis=1)
            win = eqc & (rm == best_r[:, None])
            best_n = win.argmax(axis=1)  # first True = lowest stream id
            # winner item: flat index into the unpadded (B, n) arrays
            iw = rown + i_all[rows, best_n]
            if any_lead:
                # commit the flush: it occupies the source DSA
                hw = hl[rows, best_n]
                srcw = rowa + prev_f.take(iw)
                few = fe[rows, best_n]
                sel = hw & (few > avail_f.take(srcw))
                if bool(sel.any()):
                    avail_f[srcw[sel]] = few[sel]
            e = best_c + t0_f.take(iw) * slow_f.take(iw)
            start_f[iw] = best_c
            end_f[iw] = e
            ready[rows, best_n] = e
            avail_f[rowa + acc[rows, best_n]] = e
            pointer[rows, best_n] += 1


def _slowdowns_batch(
    engine: "EvalEngine",
    bw_m: np.ndarray,
    bw_bytes: list[bytes],
    start: np.ndarray,
    end: np.ndarray,
    previous: np.ndarray,
    skip: np.ndarray,
    c: Any,
) -> np.ndarray:
    """Batched Eq. 7-8 step; rows in ``skip`` return garbage (their
    slowdowns are frozen by the caller and never read).

    The interval construction keeps *all* ``2n - 1`` sorted-bound
    intervals per row instead of filtering zero-length ones: dropped
    intervals contribute exactly ``+0.0`` to the weighted sums, and the
    middle-axis reduction accumulates rows sequentially in order, so
    the kept rows add up bit-identically to the reference's filtered
    sum (all summands are ``>= +0.0``; certified differentially).
    """
    B, n = start.shape
    # compress to unconverged rows: converged members' slowdowns are
    # frozen by the caller, so their rows would be dead weight here
    u = np.nonzero(~skip)[0]
    su = start[u]
    eu = end[u]
    U = len(u)
    c.slowdown_queries += U
    bounds = np.concatenate([su, eu], axis=1)
    bounds.sort(axis=1)
    a = bounds[:, :-1]
    b = bounds[:, 1:]
    dur = b - a
    keep = dur > 1e-15
    active3 = (su[:, None, :] <= a[:, :, None] + 1e-15) & (
        eu[:, None, :] >= b[:, :, None] - 1e-15
    )
    # vectorized structure dedup: the slowdown matrix depends only on
    # the *discretized* overlap structure (active incidence + kept
    # intervals) and the bandwidth vector, and siblings share most
    # structures -- so unique-ify those keys in one packbits+unique
    # pass and run the cache machinery per unique structure only.
    # (Durations stay continuous and per-row: the weighted average
    # below still runs on every row.)
    pk_a = np.packbits(active3.reshape(U, -1), axis=1)
    pk_k = np.packbits(keep, axis=1)
    raw = np.ascontiguousarray(
        np.concatenate([pk_a, pk_k, bw_m[u].view(np.uint8)], axis=1)
    )
    vk = raw.view(np.dtype((np.void, raw.shape[1]))).ravel()
    _, rep, inv = np.unique(vk, return_index=True, return_inverse=True)
    R = len(rep)
    c.slowdown_cache_hits += U - R
    # per-unique-structure slowdown tensor, engine cache + batched miss
    s3u = np.zeros((R, active3.shape[1], n))
    s_cache = engine._s_cache
    rep_l = rep.tolist()
    miss_pos: list[int] = []
    miss_keys: list[Any] = []
    miss_acts: list[np.ndarray] = []
    miss_bws: list[np.ndarray] = []
    for r_i, idx in enumerate(rep_l):
        row = int(u[idx])
        kp = keep[idx]
        act = active3[idx][kp]  # contiguous (K, n) == reference
        key = (act.shape[0], act.tobytes(), bw_bytes[row])
        s = s_cache.get(key)
        if s is not None:
            c.slowdown_cache_hits += 1
            s3u[r_i][kp] = s
            continue
        miss_pos.append(r_i)
        miss_keys.append(key)
        miss_acts.append(act)
        miss_bws.append(bw_m[row])
    if miss_keys:
        # all cache misses run as one padded batch through the same
        # algebra as the scalar `_s_matrix` (see `_s_matrix_many`)
        s_list = engine._s_matrix_many(miss_acts, miss_bws)
        for r_i, key, s in zip(miss_pos, miss_keys, s_list):
            s_cache.put(key, s)
            s3u[r_i][keep[rep_l[r_i]]] = s
    s3 = s3u[inv]
    # `dur * keep` == `np.where(keep, dur, 0.0)` bitwise: durations are
    # finite and >= +0.0, so * 1.0 is the identity and * 0.0 is +0.0
    wd3 = active3 * (dur * keep)[:, :, None]
    weighted = (wd3 * s3).sum(axis=1)
    covered = wd3.sum(axis=1)
    new_u = np.where(covered > 0, weighted / np.maximum(covered, 1e-30), 1.0)
    # scatter back; skipped rows keep their previous (frozen) values
    new = previous.copy()
    new[u] = 0.25 * previous[u] + 0.75 * new_u
    return new
