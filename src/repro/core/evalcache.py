"""Incremental, memoized schedule evaluation engine (the solver hot path).

Every node the branch-and-bound / portfolio solvers expand pays one
:meth:`Formulation.evaluate`; D-HaX-CoNN and the serving layer re-solve
mixes online, so evaluation throughput bounds time-to-first-incumbent
(paper Fig. 7).  :class:`EvalEngine` makes the canonical evaluation
path fast **without changing a single bit of its results**:

* :class:`ItemTensor` -- an immutable per-formulation tensor holding
  t0 / requested-bandwidth / transition lead-in/out for *every*
  (group, accelerator) pair, with the accelerator-id table frozen at
  construction.  Per-assignment item arrays become pure NumPy gathers
  (no per-call Python list building, no per-call name re-sorting).
* an event-loop timeline with per-stream plan caching: each commit
  invalidates only the streams whose inputs it touched (same stream,
  same accelerator, pipeline downstreams) instead of re-planning every
  stream twice per commit.  Arithmetic order is identical to the
  reference loop, so timelines are bit-identical.
* prefix-delta replay: the first fixed-point pass always runs with
  ``slow = 1``, so when an evaluation differs from the previous one in
  the suffix of a single stream's assignment, the previous commit log
  is replayed up to (excluding) the first decision that could have
  consulted a changed item -- every replayed decision provably sees
  identical state, so the replay is exact, not approximate.
* a slowdown-structure cache: the contention-model query (Eqs. 7-8)
  depends only on the discrete overlap structure (the ``active``
  matrix) and the bandwidth vector, not on the continuous interval
  bounds.  The overlap structure stabilizes after the first few
  fixed-point iterations, so later iterations reuse the cached
  per-interval slowdown matrix bit-for-bit.
* a bounded, signature-keyed memo table (assignment -> objective /
  per-DNN latencies / iteration count) shared read-mostly across
  portfolio workers through the epoch-sync protocol
  (:class:`MemoTable.export_delta` / :meth:`MemoTable.merge`).
  Memo entries store scalars only; ``EvaluationResult.items`` is
  re-materialized lazily on the rare occasions it is read.

The *canonical* path (``exact=True``, the default) restarts the damped
contention fixed point from ``slow = 1`` exactly like the reference
implementation: a warm-started fixed point stopped by a step tolerance
is path-dependent (~1e-4 relative), which would break the repo's
byte-identity contracts (portfolio-vs-bnb equality, memo purity, the
PR-3 certificate checker).  ``exact=False`` opts into warm-starting
from the previous converged slowdown vector -- an approximate expert
mode used by benchmarks to report iterations saved.

Thread backends share one engine: all caches hold *pure* values
(identical no matter which thread computed them), so races can only
cost a duplicated computation, never change a result.  Counters are
best-effort under threads (they are metrics, not results).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.contention.base import NoContentionModel

if TYPE_CHECKING:  # deferred: formulation imports this module
    from repro.core.formulation import EvaluationResult, Formulation, ItemTiming

#: assignment-tuple key: one tuple of accel names per stream
AssignKey = tuple[tuple[str, ...], ...]
#: memo payloads: ("ok", per_dnn, objective, makespan, energy, iters)
#: or ("bad", message) for memoized ScheduleInfeasible
MemoEntry = tuple[Any, ...]


@dataclass
class EvalCounters:
    """Hot-path instrumentation, aggregated across evaluations.

    One instance can be shared by every formulation a scheduler builds
    (see ``HaXCoNN.eval_counters``) so serving / experiment summaries
    report scheduler-wide rates.  Plain ints; merge with :meth:`merge`.
    """

    evals: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    #: evaluations actually computed (memo misses + inexact warm runs)
    computed_evals: int = 0
    #: contention fixed-point iterations across computed evaluations
    fp_iterations: int = 0
    timeline_passes: int = 0
    slowdown_queries: int = 0
    slowdown_cache_hits: int = 0
    replayed_evals: int = 0
    replayed_commits: int = 0
    batch_evals: int = 0
    batch_items: int = 0
    #: frontier-batched evaluation (repro.core.frontier)
    frontier_batches: int = 0
    frontier_members: int = 0
    #: members computed by the lockstep tensor path vs delegated to
    #: the scalar engine (tiny frontiers, pipelines, serialized, ...)
    frontier_lockstep: int = 0
    frontier_fallback: int = 0

    def merge(self, other: "EvalCounters") -> None:
        for f in fields(self):
            setattr(
                self, f.name, getattr(self, f.name) + getattr(other, f.name)
            )

    def as_dict(self) -> dict[str, float]:
        """Raw counters plus the derived rates the summaries print."""
        out: dict[str, float] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        lookups = self.memo_hits + self.memo_misses
        out["memo_hit_rate"] = self.memo_hits / lookups if lookups else 0.0
        out["fp_iter_mean"] = (
            self.fp_iterations / self.computed_evals
            if self.computed_evals
            else 0.0
        )
        queries = self.slowdown_queries
        out["slowdown_cache_hit_rate"] = (
            self.slowdown_cache_hits / queries if queries else 0.0
        )
        return out


class MemoTable:
    """Bounded FIFO assignment -> evaluation-scalars memo.

    Values are pure (bit-identical to recomputation), so sharing
    entries between portfolio workers can change *speed* but never a
    result.  Insertion-order (FIFO) eviction rather than LRU: there is
    no read-side mutation, which keeps concurrent readers safe under
    the threads backend.  :meth:`export_delta` / :meth:`merge` are the
    epoch-sync piggyback protocol (deltas are plain tuples, picklable
    across the fork backend's queues).
    """

    def __init__(self, capacity: int = 16384) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: dict[Any, MemoEntry] = {}
        #: locally-computed entries not yet exported to peers
        self._pending: list[tuple[Any, MemoEntry]] = []

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def get(self, key: Any) -> MemoEntry | None:
        return self._data.get(key)

    def _evict(self, keep: Any) -> None:
        # best-effort under concurrent writers: a racing eviction can
        # only shrink the cache, never corrupt an entry
        while len(self._data) > self.capacity:
            try:
                oldest = next(iter(self._data))
                if oldest == keep:
                    break
                del self._data[oldest]
            except (StopIteration, KeyError, RuntimeError):
                break

    def put(self, key: Any, value: MemoEntry) -> None:
        if key in self._data:
            return
        self._data[key] = value
        self._pending.append((key, value))
        self._evict(key)

    # -- cross-worker sharing (portfolio epoch sync) -------------------
    def export_delta(
        self, limit: int = 256
    ) -> tuple[tuple[Any, MemoEntry], ...]:
        """Drain up to ``limit`` locally-new entries for peers.

        Bounding the chunk bounds the sync-message size; the remainder
        goes out with the next epoch.
        """
        if not self._pending:
            return ()
        out = tuple(self._pending[:limit])
        del self._pending[: len(out)]
        return out

    def merge(self, delta: Sequence[tuple[Any, MemoEntry]]) -> None:
        """Adopt peer entries; never re-exported (no echo loops)."""
        for key, value in delta:
            if key not in self._data:
                self._data[key] = value
                self._evict(key)

    def export_all(
        self, limit: int | None = None
    ) -> tuple[tuple[Any, MemoEntry], ...]:
        """Snapshot of the newest ``limit`` entries (all when None).

        Unlike :meth:`export_delta` this does not drain ``_pending``:
        it is the persistence path (the serving layer harvests a
        solve's memo into the solve store), not the epoch-sync path,
        and the two must not steal each other's entries.  The *newest*
        entries are kept because they are the ones computed near
        convergence -- the densest warm-start value per byte.
        """
        items = list(self._data.items())
        if limit is not None and limit >= 0 and len(items) > limit:
            items = items[len(items) - limit :]
        return tuple(items)


class _FIFOCache:
    """Minimal bounded insert-only cache for pure derived arrays."""

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Any:
        return self._data.get(key)

    def put(self, key: Any, value: Any) -> None:
        if key in self._data:
            return
        self._data[key] = value
        while len(self._data) > self.capacity:
            try:
                oldest = next(iter(self._data))
                if oldest == key:
                    break
                del self._data[oldest]
            except (StopIteration, KeyError, RuntimeError):
                break


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class ItemTensor:
    """Immutable per-formulation (group, accelerator) item tensor.

    The accelerator-id table is the sorted union of every group's
    supported accelerators, frozen at construction -- the subset of
    accelerators one assignment uses sorts identically inside the
    union, so ids, Eq. 9 audit order, and the energy power gather all
    match the reference implementation observably.

    Unsupported (group, accel) cells and missing transition pairs hold
    NaN; gathers that touch one fall back to the reference lookup so
    the raised exception (type *and* message) is identical.
    """

    def __init__(self, formulation: "Formulation") -> None:
        f = formulation
        self.f = f
        names = sorted(
            {a for p in f.profiles for g in p.groups for a in g.time_s}
        )
        self.names: tuple[str, ...] = tuple(names)
        self.index: dict[str, int] = {a: i for i, a in enumerate(names)}
        A = len(names)
        self.t0: list[np.ndarray] = []
        self.bw: list[np.ndarray] = []
        self.sup: list[np.ndarray] = []
        self.trans_out: list[np.ndarray] = []
        self.trans_in: list[np.ndarray] = []
        for p in f.profiles:
            G = len(p)
            t0 = np.full((G, A), np.nan)
            bw = np.full((G, A), np.nan)
            sup = np.zeros((G, A), dtype=bool)
            for g, gp in enumerate(p.groups):
                for a, t in gp.time_s.items():
                    i = self.index[a]
                    t0[g, i] = t
                    sup[g, i] = True
                    b = gp.req_bw.get(a)
                    if b is not None:
                        bw[g, i] = b
            tout = np.full((max(G - 1, 0), A, A), np.nan)
            tin = np.full((max(G - 1, 0), A, A), np.nan)
            for g in range(G - 1):
                for (src, dst), (o, li) in p.groups[g].transition_s.items():
                    si, di = self.index.get(src), self.index.get(dst)
                    if si is not None and di is not None:
                        tout[g, si, di] = o
                        tin[g, si, di] = li
            self.t0.append(_frozen(t0))
            self.bw.append(_frozen(bw))
            self.sup.append(_frozen(sup))
            self.trans_out.append(_frozen(tout))
            self.trans_in.append(_frozen(tin))
        #: power per frozen accel id (energy objective, Eq. 10 family)
        self.power = _frozen(
            np.array([f.accel_power_w.get(a, 0.0) for a in names])
        )
        self._stream_cache = _FIFOCache(4096)

    # ------------------------------------------------------------------
    def _raise_like_reference(
        self, n: int, assignment: Sequence[str]
    ) -> None:
        """Re-raise exactly what the reference item builder would."""
        from repro.core.formulation import ScheduleInfeasible

        profile = self.f.profiles[n]
        for g, accel in enumerate(assignment):
            gp = profile.groups[g]
            if accel not in gp.time_s:
                raise ScheduleInfeasible(
                    f"group {gp.label} of {profile.dnn_name} "
                    f"cannot run on {accel!r}"
                )
            if (
                g > 0
                and assignment[g - 1] != accel
                and self.f.include_transitions
            ):
                # KeyError when the (src, dst) transition is unprofiled
                profile.transition_split(g - 1, assignment[g - 1], accel)
            _ = gp.req_bw[accel]  # KeyError when req_bw misses the DSA
        raise AssertionError(
            f"tensor gather failed for stream {n} but the reference "
            f"scan accepts {tuple(assignment)!r}"
        )

    def stream_items(
        self, n: int, assignment: tuple[str, ...]
    ) -> tuple[np.ndarray, ...]:
        """Item arrays for stream ``n``: (t0, bw, accel_id, lead_out,
        lead_in, prev_accel_id), already tiled to ``repeats[n]``.

        Repeats are identical copies (inter-rep boundaries carry no
        flush: frames are independent inputs), so one rep is gathered
        and tiled.  Results are cached and frozen read-only.
        """
        f = self.f
        profile = f.profiles[n]
        G = len(profile)
        if len(assignment) != G:
            raise ValueError(
                f"stream {n}: assignment covers {len(assignment)} "
                f"groups, profile has {G}"
            )
        key = (n, assignment)
        cached = self._stream_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[no-any-return]

        try:
            acc = np.array([self.index[a] for a in assignment], dtype=int)
        except KeyError:
            self._raise_like_reference(n, assignment)
        rows = np.arange(G)
        if not self.sup[n][rows, acc].all():
            self._raise_like_reference(n, assignment)
        t0 = self.t0[n][rows, acc]
        bw = self.bw[n][rows, acc]
        if np.isnan(bw).any():
            self._raise_like_reference(n, assignment)

        lead_out = np.zeros(G)
        lead_in = np.zeros(G)
        prev = np.full(G, -1, dtype=int)
        if G > 1 and f.include_transitions:
            moved = acc[1:] != acc[:-1]
            if moved.any():
                brows = np.arange(G - 1)
                o = self.trans_out[n][brows, acc[:-1], acc[1:]]
                li = self.trans_in[n][brows, acc[:-1], acc[1:]]
                if np.isnan(o[moved]).any() or np.isnan(li[moved]).any():
                    self._raise_like_reference(n, assignment)
                lead_out[1:] = np.where(moved, o, 0.0)
                lead_in[1:] = np.where(moved, li, 0.0)
                prev[1:] = np.where(moved, acc[:-1], -1)

        reps = f.repeats[n]
        out = tuple(
            _frozen(np.tile(a, reps) if reps != 1 else a)
            for a in (t0, bw, acc, lead_out, lead_in, prev)
        )
        self._stream_cache.put(key, out)
        return out


class EvalEngine:
    """Incremental evaluator behind :class:`Formulation`.

    ``formulation.evaluate`` delegates here; ``evaluate_scratch`` keeps
    the reference implementation alive as the differential baseline.
    Every default-path optimization is bit-identical by construction
    (see the module docstring for the argument per mechanism).
    """

    def __init__(
        self,
        formulation: "Formulation",
        *,
        counters: EvalCounters | None = None,
        memo_capacity: int = 16384,
        slowdown_cache_capacity: int = 4096,
    ) -> None:
        self.f = formulation
        self.counters = counters if counters is not None else EvalCounters()
        self.tensor = ItemTensor(formulation)
        self.memo = MemoTable(memo_capacity)
        self._s_cache = _FIFOCache(slowdown_cache_capacity)
        #: (own_bw, ext_bw, n_clients) -> slowdown (see _slowdown_cells)
        self._trip_cache: dict[tuple[float, float, int], float] = {}
        # static workload geometry (independent of assignments)
        counts = [
            len(p) * r for p, r in zip(formulation.profiles, formulation.repeats)
        ]
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(int)
        self._counts = counts
        self._offsets = offsets
        self._n_items = int(offsets[-1])
        self._stream_vec = _frozen(
            np.repeat(np.arange(len(counts)), counts)
        )
        self._chains: list[list[int]] = [
            list(range(int(offsets[n]), int(offsets[n + 1])))
            for n in range(len(counts))
        ]
        self._groups_per = [len(p) for p in formulation.profiles]
        self._upstreams: dict[int, list[int]] = {}
        for up, down in formulation.pipeline:
            self._upstreams.setdefault(down, []).append(up)
        self._downstream: dict[int, list[int]] = {}
        for down, ups in self._upstreams.items():
            for up in ups:
                self._downstream.setdefault(up, []).append(down)
        self._lens = [len(c) for c in self._chains]
        self._down_lists = [
            tuple(self._downstream.get(n, ())) for n in range(len(counts))
        ]
        #: (key, commit log, converged slow) of the last computed
        #: evaluation (non-serialized) -- the prefix-delta parent
        self._last: tuple[AssignKey, list[tuple], np.ndarray] | None = None
        #: converged slowdown vector of the most recent contended
        #: evaluation, exact or warm -- the opt-in ``exact=False`` path
        #: seeds its fixed point from here.  Kept apart from ``_last``:
        #: warm runs record no commit log (their first timeline pass is
        #: not the reference slow=1 pass), so parking their state in
        #: ``_last`` would hand the replay path an unusable log, while
        #: leaving it out entirely would keep warm-only sequences cold.
        self._warm_slow: np.ndarray | None = None

    # -- public API ----------------------------------------------------
    def evaluate(
        self,
        assignments: Sequence[Sequence[str]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
        exact: bool = True,
    ) -> "EvaluationResult":
        """Drop-in for the reference ``Formulation.evaluate``.

        ``exact=False`` warm-starts the contention fixed point from
        the previous converged slowdown vector -- fewer iterations but
        path-dependent results (~1e-4 relative); never use it where
        byte-identity matters (solvers, caches, certificates).
        """
        from repro.core.formulation import ScheduleInfeasible

        c = self.counters
        c.evals += 1
        key = tuple(tuple(a) for a in assignments)
        memo_key = (key, serialized, check_exclusive)
        if exact:
            hit = self.memo.get(memo_key)
            if hit is not None:
                c.memo_hits += 1
                if hit[0] == "bad":
                    raise ScheduleInfeasible(hit[1])
                return self._result_from_memo(hit, key, serialized)
            c.memo_misses += 1
        try:
            computed = self._compute(
                key,
                serialized,
                check_exclusive,
                replay_ok=exact,
                warm=not exact,
            )
        except ScheduleInfeasible as exc:
            if exact:
                self.memo.put(memo_key, ("bad", str(exc)))
            raise
        (per_dnn, objective, makespan, energy, iterations, arrays) = computed
        if exact:
            self.memo.put(
                memo_key,
                ("ok", per_dnn, objective, makespan, energy, iterations),
            )
        return self._result(
            per_dnn, objective, makespan, energy, iterations, arrays
        )

    def evaluate_many(
        self,
        batch: Sequence[Sequence[Sequence[str]]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
    ) -> list["EvaluationResult | Exception"]:
        """Evaluate sibling assignments in one pass.

        Siblings share the engine's gather / slowdown-structure caches
        and chain through the prefix-delta replay state (consecutive
        siblings typically differ in one stream's suffix -- exactly the
        B&B child-ordering shape).  Infeasible entries come back as
        exception *instances* in place, so one bad sibling does not
        abort the batch; results are bit-identical to per-call
        :meth:`evaluate`.
        """
        from repro.core.formulation import ScheduleInfeasible

        self.counters.batch_evals += 1
        self.counters.batch_items += len(batch)
        out: list["EvaluationResult | Exception"] = []
        for assignments in batch:
            try:
                out.append(
                    self.evaluate(
                        assignments,
                        serialized=serialized,
                        check_exclusive=check_exclusive,
                    )
                )
            except ScheduleInfeasible as exc:
                out.append(exc)
        return out

    def evaluate_frontier(
        self,
        batch: Sequence[Sequence[Sequence[str]]],
        *,
        serialized: bool = False,
        check_exclusive: bool = True,
    ) -> list["EvaluationResult | Exception"]:
        """Evaluate a B&B frontier in one lockstep NumPy batch.

        Results are bit-identical to per-member :meth:`evaluate`
        (infeasible members come back as exception instances in
        place, the :meth:`evaluate_many` convention); the batching is
        purely a throughput lever.  See :mod:`repro.core.frontier`.
        """
        from repro.core.frontier import evaluate_frontier

        return evaluate_frontier(
            self,
            batch,
            serialized=serialized,
            check_exclusive=check_exclusive,
        )

    def stats(self) -> dict[str, float]:
        out = self.counters.as_dict()
        out["memo_size"] = float(len(self.memo))
        out["slowdown_cache_size"] = float(len(self._s_cache))
        return out

    # -- result assembly ----------------------------------------------
    def _result(
        self,
        per_dnn: tuple[float, ...],
        objective: float,
        makespan: float,
        energy: float | None,
        iterations: int,
        arrays: tuple[np.ndarray, ...],
    ) -> "EvaluationResult":
        from repro.core.formulation import EvaluationResult

        f = self.f
        stream, accel_id, start, end, t0, slow, bw = arrays
        names = list(self.tensor.names)
        n_items = len(t0)

        def build() -> tuple["ItemTiming", ...]:
            return tuple(
                f._item(i, stream, accel_id, start, end, t0, slow, bw, names)
                for i in range(n_items)
            )

        return EvaluationResult(
            per_dnn_time=per_dnn,
            objective=objective,
            makespan=makespan,
            energy_j=energy,
            fixed_point_iterations=iterations,
            _item_builder=build,
        )

    def _result_from_memo(
        self, hit: MemoEntry, key: AssignKey, serialized: bool
    ) -> "EvaluationResult":
        from repro.core.formulation import EvaluationResult

        _tag, per_dnn, objective, makespan, energy, iterations = hit

        def build() -> tuple["ItemTiming", ...]:
            return self._materialize(key, serialized)

        return EvaluationResult(
            per_dnn_time=per_dnn,
            objective=objective,
            makespan=makespan,
            energy_j=energy,
            fixed_point_iterations=iterations,
            _item_builder=build,
        )

    def _materialize(
        self, key: AssignKey, serialized: bool
    ) -> tuple["ItemTiming", ...]:
        """Rebuild per-item timings for a memoized result (rare path).

        Pure recomputation: no memo, no replay state, no counters --
        materializing a display never perturbs the engine.
        """
        f = self.f
        (_pd, _obj, _mk, _en, _it, arrays) = self._compute(
            key,
            serialized,
            False,
            replay_ok=False,
            record_state=False,
            tally=False,
        )
        stream, accel_id, start, end, t0, slow, bw = arrays
        names = list(self.tensor.names)
        return tuple(
            f._item(i, stream, accel_id, start, end, t0, slow, bw, names)
            for i in range(len(t0))
        )

    # -- core evaluation ----------------------------------------------
    def _gather(self, key: AssignKey) -> tuple[np.ndarray, ...]:
        """Concatenated item arrays for one assignment key."""
        if len(key) != len(self.f.profiles):
            raise ValueError(
                f"expected {len(self.f.profiles)} assignments, got {len(key)}"
            )
        per_stream = [
            self.tensor.stream_items(n, a) for n, a in enumerate(key)
        ]
        if not per_stream:
            z = np.zeros(0)
            zi = np.zeros(0, dtype=int)
            return z, z, zi, z, z, zi
        return tuple(
            np.concatenate([s[j] for s in per_stream]) for j in range(6)
        )

    def _compute(
        self,
        key: AssignKey,
        serialized: bool,
        check_exclusive: bool,
        *,
        replay_ok: bool = True,
        warm: bool = False,
        record_state: bool = True,
        tally: bool = True,
    ) -> tuple[
        tuple[float, ...],
        float,
        float,
        float | None,
        int,
        tuple[np.ndarray, ...],
    ]:
        """One full evaluation; mirrors the reference control flow."""
        f = self.f
        # a throwaway counter sinks the increments of untallied runs
        # (memo materialization) without branching every hot-path bump
        c = self.counters if tally else EvalCounters()
        c.computed_evals += 1
        t0, bw, accel_id, lead_out, lead_in, prev_id = self._gather(key)
        n_items = self._n_items
        contention_free = serialized or isinstance(
            f.contention_model, NoContentionModel
        )
        event_loop = not serialized and f.resource_constrained

        last = self._last if event_loop else None
        slow = np.ones(n_items)
        if warm and not contention_free and self._warm_slow is not None:
            slow = self._warm_slow.copy()
        replay: list[tuple] | None = None
        if event_loop and replay_ok and not warm and last is not None:
            replay = self._replay_prefix(key, last)
            if replay:
                c.replayed_evals += 1
                c.replayed_commits += len(replay)

        start = np.zeros(n_items)
        end = np.zeros(n_items)
        bw_bytes = bw.tobytes()
        # python-list views: scalar indexing in the event loop is far
        # cheaper than NumPy item access and bitwise-identical (both
        # are IEEE-754 doubles)
        t0_l = t0.tolist()
        lo_l = lead_out.tolist()
        li_l = lead_in.tolist()
        acc_l = accel_id.tolist()
        prev_l = prev_id.tolist()

        log: list[tuple] | None = None
        iterations = 0
        for iterations in range(1, f.max_iterations + 1):
            first = iterations == 1
            if event_loop:
                record = [] if (first and not warm) else None
                self._timeline_rc(
                    t0_l,
                    slow.tolist(),
                    acc_l,
                    lo_l,
                    li_l,
                    prev_l,
                    start,
                    end,
                    replay=replay if first else None,
                    record=record,
                )
                if record is not None:
                    log = (list(replay) + record) if replay else record
            else:
                self._timeline_chain(
                    t0_l, slow.tolist(), lo_l, li_l, serialized, start, end
                )
            c.timeline_passes += 1
            if contention_free:
                break
            new_slow = self._slowdowns(bw, bw_bytes, start, end, slow, c)
            if np.max(np.abs(new_slow - slow)) < f.tolerance:
                slow = new_slow
                if event_loop:
                    self._timeline_rc(
                        t0_l,
                        slow.tolist(),
                        acc_l,
                        lo_l,
                        li_l,
                        prev_l,
                        start,
                        end,
                    )
                else:
                    self._timeline_chain(
                        t0_l,
                        slow.tolist(),
                        lo_l,
                        li_l,
                        serialized,
                        start,
                        end,
                    )
                c.timeline_passes += 1
                break
            slow = new_slow
        c.fp_iterations += iterations

        if check_exclusive and not serialized and not f.resource_constrained:
            # the resource-constrained timeline cannot overlap a DSA
            # structurally; Eq. 9 only guards the naive chain timeline
            f._check_eq9(self._stream_vec, accel_id, start, end)

        offsets = self._offsets
        end_list = end.tolist()
        # python max over list slices: max() does no arithmetic, so
        # any reduction order gives the reference np.max bit-for-bit
        per_dnn = tuple(
            max(end_list[offsets[n] : offsets[n + 1]])
            if offsets[n + 1] > offsets[n]
            else float(end[offsets[n] : offsets[n + 1]].max())
            for n in range(len(f.profiles))
        )
        makespan = max(end_list) if n_items else 0.0
        energy = None
        if f.accel_power_w:
            energy = float(
                ((end - start) * self.tensor.power[accel_id]).sum()
            )
        objective = f._objective(per_dnn, serialized, energy)
        if record_state and event_loop and log is not None:
            self._last = (key, log, slow.copy())
        if record_state and not contention_free:
            self._warm_slow = slow.copy()
        arrays = (self._stream_vec, accel_id, start, end, t0, slow, bw)
        return per_dnn, objective, makespan, energy, iterations, arrays

    def _replay_prefix(
        self,
        key: AssignKey,
        last: tuple[AssignKey, list[tuple], np.ndarray],
    ) -> list[tuple] | None:
        """Commit-log prefix provably shared with the last evaluation.

        Valid only for the first fixed-point pass (both runs start at
        ``slow = 1``).  When exactly one stream ``d`` differs, with
        first differing group ``k``, every scheduling decision made
        while fewer than ``k`` of ``d``'s items were committed
        consulted only unchanged items in an identical state, so the
        parent's decisions replay verbatim up to that point.
        """
        last_key, log, _slow = last
        diffs = [n for n, (a, b) in enumerate(zip(key, last_key)) if a != b]
        if not diffs:
            return list(log)  # identical assignments: full replay
        if len(diffs) > 1:
            return None
        d = diffs[0]
        a, b = key[d], last_key[d]
        k = next(i for i in range(len(a)) if a[i] != b[i])
        if k == 0:
            return None
        prefix: list[tuple] = []
        committed_d = 0
        for entry in log:
            if committed_d >= k:
                break
            prefix.append(entry)
            if entry[0] == d:
                committed_d += 1
        return prefix or None

    # -- timelines -----------------------------------------------------
    def _timeline_chain(
        self,
        t0: list[float],
        slow: list[float],
        lead_out: list[float],
        lead_in: list[float],
        serialized: bool,
        start: np.ndarray,
        end: np.ndarray,
    ) -> None:
        """Serialized / naive chain timeline (Eq. 4), reference order."""
        t = 0.0
        for n in range(len(self._chains)):
            if not serialized:
                t = 0.0
            for i in self._chains[n]:
                t += lead_out[i] + lead_in[i]
                start[i] = t
                t += t0[i] * slow[i]
                end[i] = t

    def _timeline_rc(
        self,
        t0: list[float],
        slow: list[float],
        accel: list[int],
        lead_out: list[float],
        lead_in: list[float],
        prev_accel: list[int],
        start: np.ndarray,
        end: np.ndarray,
        replay: list[tuple] | None = None,
        record: list[tuple] | None = None,
    ) -> None:
        """Resource-constrained FCFS event loop (Eqs. 4-6 plus Eq. 9).

        Semantics and arithmetic order match the reference loop
        exactly; the difference is purely mechanical: per-stream plans
        are cached and only re-derived when a commit touched one of
        their inputs (own stream, pipeline upstream, or the planned
        item's accelerator), and the winning plan is committed directly
        instead of being re-planned.
        """
        chains = self._chains
        n_streams = len(chains)
        groups_per = self._groups_per
        upstreams = self._upstreams
        down_lists = self._down_lists
        has_pipe = bool(upstreams)
        pointer = [0] * n_streams
        ready = [0.0] * n_streams
        avail = [0.0] * len(self.tensor.names)
        lens = self._lens
        remaining = self._n_items
        n_items = remaining
        # stage starts/ends in plain lists; one bulk copy into the
        # caller's arrays at the end (scalar ndarray writes are slow)
        start_l = [0.0] * n_items
        end_l = [0.0] * n_items

        if replay:
            for (m, i, s_i, e_i, src, flush_end) in replay:
                if src >= 0 and flush_end > avail[src]:
                    avail[src] = flush_end
                start_l[i] = s_i
                end_l[i] = e_i
                ready[m] = e_i
                avail[accel[i]] = e_i
                pointer[m] += 1
            remaining -= len(replay)

        # per-stream plan cache as parallel scalar lists (cheaper than
        # tuples): _valid gates recomputation, _none marks a stream
        # blocked on an unscheduled pipeline upstream
        p_valid = [False] * n_streams
        p_none = [False] * n_streams
        p_c = [0.0] * n_streams  # candidate start
        p_r = [0.0] * n_streams  # became-ready (FCFS tiebreak)
        p_i = [0] * n_streams  # planned item
        p_a = [0] * n_streams  # planned item's accelerator
        inf = float("inf")
        while remaining:
            best_n = -1
            best_c = inf
            best_r = inf
            for n in range(n_streams):
                pn = pointer[n]
                if pn >= lens[n]:
                    continue
                if not p_valid[n]:
                    # (re-)plan stream n's next item
                    i = chains[n][pn]
                    item_ready = ready[n]
                    if has_pipe and n in upstreams and pn % groups_per[n] == 0:
                        rep = pn // groups_per[n]
                        blocked = False
                        for up in upstreams[n]:
                            up_idx = (rep + 1) * groups_per[up] - 1
                            if up_idx >= lens[up]:
                                continue  # upstream runs fewer frames
                            if pointer[up] <= up_idx:
                                blocked = True
                                break
                            up_end = end_l[chains[up][up_idx]]
                            if up_end > item_ready:
                                item_ready = up_end
                        if blocked:
                            p_valid[n] = True
                            p_none[n] = True
                            continue
                    lo = lead_out[i]
                    li = lead_in[i]
                    a = avail[accel[i]]
                    if lo > 0 or li > 0:
                        # the flush starts right when the predecessor
                        # ends: it wins FCFS on the just-freed source
                        # DSA, so only the destination DSA's
                        # availability gates the load
                        flush_end = item_ready + lo
                        load_start = flush_end if flush_end > a else a
                        c = r = load_start + li
                    else:
                        c = item_ready if item_ready > a else a
                        r = item_ready
                    p_valid[n] = True
                    p_none[n] = False
                    p_c[n] = c
                    p_r[n] = r
                    p_i[n] = i
                    p_a[n] = accel[i]
                elif p_none[n]:
                    continue
                else:
                    c = p_c[n]
                    r = p_r[n]
                # ties on start go to the item that became ready first,
                # then the lower stream id -- the runtime's FCFS policy
                # (the ascending scan keeps the first, i.e. lowest, n)
                if c < best_c or (c == best_c and r < best_r):
                    best_n = n
                    best_c = c
                    best_r = r
            assert best_n >= 0, "pipeline deadlock in timeline"
            i = p_i[best_n]
            # commit: the flush occupies the source DSA for its span;
            # the item (including its load) then occupies its own DSA
            if lead_out[i] > 0 or lead_in[i] > 0:
                src = prev_accel[i]
                flush_end = ready[best_n] + lead_out[i]
                if flush_end > avail[src]:
                    avail[src] = flush_end
            else:
                src = -1
                flush_end = 0.0
            e = best_c + t0[i] * slow[i]
            start_l[i] = best_c
            end_l[i] = e
            ready[best_n] = e
            own = accel[i]
            avail[own] = e
            pointer[best_n] += 1
            remaining -= 1
            if record is not None:
                record.append((best_n, i, best_c, e, src, flush_end))
            # invalidate exactly the plans whose inputs this commit
            # could have touched
            p_valid[best_n] = False
            for d in down_lists[best_n]:
                p_valid[d] = False
            for n in range(n_streams):
                if p_valid[n] and not p_none[n]:
                    na = p_a[n]
                    if na == own or na == src:
                        p_valid[n] = False
        start[:] = start_l
        end[:] = end_l

    # -- slowdowns -----------------------------------------------------
    def _slowdowns(
        self,
        bw: np.ndarray,
        bw_bytes: bytes,
        start: np.ndarray,
        end: np.ndarray,
        previous: np.ndarray,
        c: EvalCounters,
    ) -> np.ndarray:
        """Contention-interval slowdowns (Eqs. 7-8), reference math.

        The contention-model query depends only on the boolean overlap
        structure and the bandwidth vector, so its result is cached
        under ``(active, bw)`` -- the structure stabilizes within a few
        fixed-point iterations while the continuous interval bounds
        keep drifting, and sibling evaluations often share structures.
        """
        # sorted-with-duplicates instead of the reference's np.unique:
        # duplicate bounds only add zero-length intervals, which the
        # dur filter below drops, so the kept (a, b) pairs -- and
        # everything derived from them -- are identical, at a fraction
        # of the cost (local buffer: thread-safe under the portfolio's
        # threads backend, in-place sort)
        n = len(start)
        bounds = np.empty(2 * n)
        bounds[:n] = start
        bounds[n:] = end
        bounds.sort()
        a, b = bounds[:-1], bounds[1:]
        dur = b - a
        keep = dur > 1e-15
        a, b, dur = a[keep], b[keep], dur[keep]
        # active[k, i]: item i runs during interval k
        active = (start[None, :] <= a[:, None] + 1e-15) & (
            end[None, :] >= b[:, None] - 1e-15
        )
        c.slowdown_queries += 1
        key = (active.shape[0], active.tobytes(), bw_bytes)
        s = self._s_cache.get(key)
        if s is None:
            s = self._s_matrix(active, bw)
            self._s_cache.put(key, s)
        else:
            c.slowdown_cache_hits += 1
        wd = active * dur[:, None]
        weighted = (wd * s).sum(axis=0)
        covered = wd.sum(axis=0)
        new = np.where(
            covered > 0, weighted / np.maximum(covered, 1e-30), 1.0
        )
        # light damping stabilizes the fixed point when slowdowns
        # shift the overlap structure between iterations
        return 0.25 * previous + 0.75 * new

    def _s_matrix(self, active: np.ndarray, bw: np.ndarray) -> np.ndarray:
        """Per-interval slowdown matrix for one overlap structure.

        The single implementation behind both the scalar path's
        ``_slowdowns`` and the frontier batcher's per-member cache
        misses -- sharing the code is what makes the two paths'
        cache entries interchangeable bit-for-bit.
        """
        total_bw = active @ bw
        n_clients = active.sum(axis=1)
        ext = np.where(active, total_bw[:, None] - bw[None, :], 0.0)
        own = np.broadcast_to(bw[None, :], active.shape)
        s = np.ones(active.shape)
        mask = active & (ext > 0)
        if mask.any():
            s[mask] = self._slowdown_cells(
                own[mask],
                ext[mask],
                np.broadcast_to(n_clients[:, None], active.shape)[mask],
            )
        return _frozen(s)

    def _s_matrix_many(
        self, acts: list[np.ndarray], bws: list[np.ndarray]
    ) -> list[np.ndarray]:
        """`_s_matrix` for several overlap structures in one shot.

        Structures are padded to a common interval count and run as
        one elementwise tensor program whose per-structure rows carry
        exactly the :meth:`_s_matrix` values: padding rows are
        all-inactive (no cells, slowdown stays 1.0) and every
        batched op is elementwise, except ``active @ bw``, which is
        kept as the reference per-structure matmul so the float
        reduction order cannot drift.  The contention-model cells are
        funneled through a single :meth:`_slowdown_cells` call --
        elementwise and per-triple memoized, so regrouping cells
        across structures cannot change any value.
        """
        if not acts:
            return []
        m = len(acts)
        n = len(bws[0])
        ks = [act.shape[0] for act in acts]
        kmax = max(ks)
        a3 = np.zeros((m, kmax, n), dtype=bool)
        tb = np.zeros((m, kmax))
        for i, (act, bw) in enumerate(zip(acts, bws)):
            a3[i, : ks[i]] = act
            tb[i, : ks[i]] = act @ bw
        bw2 = np.stack(bws)
        n_clients = a3.sum(axis=2)
        ext3 = np.where(a3, tb[:, :, None] - bw2[:, None, :], 0.0)
        own3 = np.broadcast_to(bw2[:, None, :], a3.shape)
        mask3 = a3 & (ext3 > 0)
        s3 = np.ones(a3.shape)
        own_c = own3[mask3]
        if len(own_c):
            ext_c = ext3[mask3]
            ncl_c = np.broadcast_to(n_clients[:, :, None], a3.shape)[mask3]
            # dedup triples vectorially before the per-cell memo: the
            # same (own, ext, n_clients) triple recurs across cells
            # and `_slowdown_cells` is elementwise, so evaluating one
            # representative per distinct triple and scattering back
            # returns the same cells in the same order
            trip = np.ascontiguousarray(
                np.stack([own_c, ext_c, ncl_c * 1.0], axis=1)
            )
            vt = trip.view(
                np.dtype((np.void, trip.dtype.itemsize * 3))
            ).ravel()
            _, first, inv = np.unique(
                vt, return_index=True, return_inverse=True
            )
            vals = self._slowdown_cells(
                own_c[first], ext_c[first], ncl_c[first]
            )
            s3[mask3] = vals[inv]
        return [
            _frozen(np.ascontiguousarray(s3[i, : ks[i]]))
            for i in range(m)
        ]

    def _slowdown_cells(
        self,
        own: np.ndarray,
        ext: np.ndarray,
        n_clients: np.ndarray,
    ) -> np.ndarray:
        """Contention-model lookups with a per-cell memo.

        Every ``slowdown_bulk`` implementation in this repo is
        elementwise: cell i's slowdown depends only on its own
        (own_bw, ext_bw, n_clients) triple, never on the other cells
        in the call.  The same triples recur across interval
        structures (the same pair of co-running groups contends
        identically no matter how the intervals around it shift), so
        only never-seen triples hit the model -- in one deduplicated
        vectorized call, which is bit-identical to the full call by
        elementwise-ness.
        """
        cache = self._trip_cache
        triples = list(
            zip(own.tolist(), ext.tolist(), n_clients.tolist())
        )
        need = [t for t in dict.fromkeys(triples) if t not in cache]
        if need:
            vals = self.f.contention_model.slowdown_bulk(
                np.array([t[0] for t in need]),
                np.array([t[1] for t in need]),
                np.array([t[2] for t in need]),
            )
            for t, v in zip(need, np.atleast_1d(vals).tolist()):
                cache[t] = v
            if len(cache) > 131072:  # runaway guard; never hit in practice
                cache.clear()
        return np.array([cache[t] for t in triples])
