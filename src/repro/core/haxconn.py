"""The HaX-CoNN scheduler: optimal contention-aware co-scheduling.

Pipeline (paper Fig. 2): layer grouping and per-group profiling come
from :mod:`repro.profiling`; this module builds the constraint problem
of Section 3.4 over per-stream *segmentation* variables (start DSA +
transition boundaries), solves it to optimality with the anytime
branch-and-bound solver, and falls back to the serialized GPU-only
schedule whenever concurrency cannot win -- the paper's guarantee that
HaX-CoNN never loses to the naive baselines (Section 5.2, Scenario 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.contention.base import ContentionModel
from repro.core.evalcache import EvalCounters
from repro.core.formulation import (
    EvaluationResult,
    Formulation,
)
from repro.core.schedule import DNNSchedule, Schedule
from repro.core.workload import Workload
from repro.profiling.database import ProfileDB
from repro.profiling.profiler import DNNProfile, concat_profiles
from repro.solver.bnb import BranchAndBound, Incumbent, SolveResult
from repro.solver.portfolio import PortfolioSolver
from repro.solver.problem import Assignment, Infeasible, Problem, Variable
from repro.soc.platform import Platform, get_platform

if TYPE_CHECKING:  # layering: core never imports learn at runtime
    from repro.learn.guide import SearchGuide


def stream_profiles(
    workload: Workload, db: ProfileDB, *, max_groups: int | None
) -> tuple[DNNProfile, ...]:
    """Resolve each workload stream to a (possibly chained) profile."""
    out = []
    for dnn in workload:
        parts = [db.profile(m, max_groups=max_groups) for m in dnn.models]
        out.append(concat_profiles(parts))
    return tuple(out)


def enumerate_assignments(
    profile: DNNProfile,
    accel_names: Sequence[str],
    *,
    max_transitions: int,
) -> tuple[tuple[str, ...], ...]:
    """All capability-respecting assignments with bounded transitions.

    An assignment is a segmentation: pick up to ``max_transitions``
    boundaries and an accelerator per segment with adjacent segments
    on different DSAs.  Groups with capability restrictions (e.g. LRN
    on the DLA) prune incompatible candidates.
    """
    n = len(profile)
    supported = [frozenset(g.time_s) for g in profile.groups]
    results: list[tuple[str, ...]] = []
    for k in range(max_transitions + 1):
        for boundaries in itertools.combinations(range(1, n), k):
            cuts = (0, *boundaries, n)
            for accel_seq in itertools.product(accel_names, repeat=k + 1):
                if any(
                    accel_seq[s] == accel_seq[s + 1] for s in range(k)
                ):
                    continue
                assignment: list[str] = []
                for s in range(k + 1):
                    assignment.extend(
                        [accel_seq[s]] * (cuts[s + 1] - cuts[s])
                    )
                if all(
                    assignment[g] in supported[g] for g in range(n)
                ):
                    results.append(tuple(assignment))
    return tuple(results)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one scheduling run."""

    schedule: Schedule
    predicted: EvaluationResult
    solver: SolveResult | None
    formulation: Formulation

    @property
    def predicted_latency(self) -> float:
        return self.predicted.makespan

    def describe(self) -> str:
        return self.schedule.describe()


class HaXCoNN:
    """Contention-aware optimal scheduler for concurrent DNNs.

    Parameters
    ----------
    platform:
        Target SoC (name or :class:`Platform`).
    db:
        Profile database; a fresh one is created when omitted.
    contention_model:
        Defaults to the platform's fitted PCCS model.
    max_transitions:
        Per-stream transition budget; the paper's optimal schedules
        use a single transition per DNN (Table 6's TR column).
    max_groups:
        Grouping coarseness (Table 2 uses ~10 for GoogleNet).
    solver:
        ``"bnb"`` (single-threaded branch and bound, the default),
        ``"portfolio"`` (the parallel anytime portfolio of
        :mod:`repro.solver.portfolio`, seeded with the best
        contention-oblivious baselines and any caller warm starts), or
        a callable ``solver(problem, initial=..., on_incumbent=...)``
        returning a :class:`SolveResult` (for tests and experiments).
    solver_workers / solver_seed / solver_backend / solver_clock /
    solver_transport:
        Portfolio configuration, ignored for ``"bnb"``; see
        :class:`~repro.solver.portfolio.PortfolioSolver`.
    guide:
        Optional store-trained :class:`~repro.learn.guide.SearchGuide`.
        With the portfolio solver it adds learned root seeds and the
        ``learned`` strategy (branch ordering by predicted fragment
        quality); guidance only reorders search, so the certified
        optimum is identical with or without it.  Ignored by plain
        ``bnb`` and callable solvers.
    """

    def __init__(
        self,
        platform: Platform | str,
        *,
        db: ProfileDB | None = None,
        contention_model: ContentionModel | None = None,
        max_transitions: int = 2,
        max_groups: int | None = 12,
        epsilon_makespan_frac: float = 0.06,
        include_transitions: bool = True,
        resource_constrained: bool = True,
        fallback_margin: float = 0.02,
        time_budget_s: float | None = None,
        node_budget: int | None = None,
        solver: str | Callable[..., SolveResult] = "bnb",
        solver_workers: int | None = None,
        solver_seed: int = 0,
        solver_backend: str = "auto",
        solver_clock: str = "wall",
        solver_transport: str = "auto",
        verify: bool = False,
        guide: "SearchGuide | None" = None,
    ) -> None:
        self.platform = (
            get_platform(platform) if isinstance(platform, str) else platform
        )
        self.db = db if db is not None else ProfileDB(self.platform)
        self._contention_model = contention_model
        self.max_transitions = max_transitions
        self.max_groups = max_groups
        self.epsilon_makespan_frac = epsilon_makespan_frac
        self.include_transitions = include_transitions
        self.resource_constrained = resource_constrained
        if not 0 <= fallback_margin < 1:
            raise ValueError("fallback_margin must be in [0, 1)")
        self.fallback_margin = fallback_margin
        self.time_budget_s = time_budget_s
        self.node_budget = node_budget
        if isinstance(solver, str) and solver not in ("bnb", "portfolio"):
            raise ValueError(
                f"solver must be 'bnb', 'portfolio' or callable, "
                f"got {solver!r}"
            )
        self.solver = solver
        self.verify = verify
        self.solver_workers = solver_workers
        self.solver_seed = solver_seed
        self.solver_backend = solver_backend
        self.solver_clock = solver_clock
        self.solver_transport = solver_transport
        self.guide = guide
        #: evaluation-engine counters, accumulated across every
        #: formulation this scheduler builds (D-HaX-CoNN re-solves
        #: mixes online, so per-formulation counters would reset on
        #: each mix change); surfaced by ``stats()`` consumers
        self.eval_counters = EvalCounters()

    @property
    def contention_model(self) -> ContentionModel:
        if self._contention_model is None:
            self._contention_model = self.db.pccs
        return self._contention_model

    # ------------------------------------------------------------------
    def build_formulation(
        self, workload: Workload
    ) -> tuple[Formulation, tuple[DNNProfile, ...]]:
        profiles = stream_profiles(
            workload, self.db, max_groups=self.max_groups
        )
        formulation = Formulation(
            profiles,
            [d.repeats for d in workload],
            workload.objective,
            self.contention_model,
            include_transitions=self.include_transitions,
            resource_constrained=self.resource_constrained,
            pipeline=workload.pipeline,
            epsilon_makespan_frac=self.epsilon_makespan_frac,
            accel_power_w={
                a.name: a.active_power_w
                for a in self.platform.accelerators
            },
            eval_counters=self.eval_counters,
        )
        return formulation, profiles

    def symmetry_classes(self, workload: Workload) -> list[list[str]]:
        """Groups of interchangeable stream variables.

        Streams with the same model chain and repeat count are
        symmetric under permutation (Scenario 1's two instances of the
        same DNN): swapping their assignments never changes the
        objective.  Streams with pipeline dependencies are excluded --
        their index identifies them.
        """
        pipelined = {n for edge in workload.pipeline for n in edge}
        groups: dict[tuple, list[str]] = {}
        for n, dnn in enumerate(workload):
            if n in pipelined:
                continue
            groups.setdefault((dnn.models, dnn.repeats), []).append(
                f"dnn{n}"
            )
        return [names for names in groups.values() if len(names) > 1]

    def canonicalize_assignment(
        self, workload: Workload, assignment: Assignment
    ) -> dict[str, tuple[str, ...]]:
        """Sort identical streams' assignments into canonical order.

        The symmetry-breaking constraints of :meth:`build_problem`
        only admit the sorted representative of each permutation
        class; warm-start seeds built from baselines must be
        canonicalized the same way or they would be rejected as
        infeasible.
        """
        out = dict(assignment)
        for names in self.symmetry_classes(workload):
            if all(name in out for name in names):
                values = sorted(out[name] for name in names)
                for name, value in zip(names, values):
                    out[name] = value
        return out

    def build_problem(
        self, workload: Workload, formulation: Formulation
    ) -> Problem:
        """Compile the workload into a solver problem (Section 3.4).

        Identical streams get a lexicographic ordering constraint
        (symmetry breaking): every permutation class of assignments
        keeps exactly its sorted representative, which preserves the
        optimal objective while shrinking the search tree.
        """
        accel_names = self.platform.accelerator_names
        domains = [
            enumerate_assignments(
                p, accel_names, max_transitions=self.max_transitions
            )
            for p in formulation.profiles
        ]
        for n, domain in enumerate(domains):
            if not domain:
                raise Infeasible(
                    f"stream {workload.names[n]} has no feasible assignment"
                )
        variables = [
            Variable(name=f"dnn{n}", domain=domain)
            for n, domain in enumerate(domains)
        ]
        chain_cache: dict[tuple[int, tuple[str, ...]], float] = {}
        busy_cache: dict[tuple[int, tuple[str, ...]], dict[str, float]] = {}

        def chain(n: int, a: tuple[str, ...]) -> float:
            key = (n, a)
            if key not in chain_cache:
                chain_cache[key] = formulation.chain_time(n, a)
            return chain_cache[key]

        def busy(n: int, a: tuple[str, ...]) -> dict[str, float]:
            key = (n, a)
            if key not in busy_cache:
                busy_cache[key] = formulation.busy_times(n, a)
            return busy_cache[key]

        min_chain = [
            min(chain(n, a) for a in domain)
            for n, domain in enumerate(domains)
        ]

        def objective(assignment: Assignment) -> float:
            result = formulation.evaluate(
                [assignment[f"dnn{n}"] for n in range(len(domains))]
            )
            return result.objective

        def frontier_evaluate(assignments: Sequence[Assignment]) -> None:
            # memo-prewarm only: evaluate_frontier stores every
            # member's result (or ScheduleInfeasible) in the engine
            # memo under the same key objective() reads, bit-identical
            # to the scalar path -- so the solver's later objective()
            # calls are memo hits and the search tree is unchanged
            formulation.evaluate_frontier(
                [
                    [a[f"dnn{n}"] for n in range(len(domains))]
                    for a in assignments
                ]
            )

        min_energy = None
        if formulation.objective == "energy":
            min_energy = [
                min(formulation.chain_energy(n, a) for a in domain)
                for n, domain in enumerate(domains)
            ]

        def lower_bound(partial: Assignment) -> float:
            if formulation.objective == "energy":
                assert min_energy is not None
                return sum(
                    formulation.chain_energy(n, partial[f"dnn{n}"])
                    if f"dnn{n}" in partial
                    else min_energy[n]
                    for n in range(len(domains))
                )
            per_dnn = [
                chain(n, partial[f"dnn{n}"])
                if f"dnn{n}" in partial
                else min_chain[n]
                for n in range(len(domains))
            ]
            if formulation.objective == "latency":
                # each DSA is serial, so assigned streams' combined
                # per-DSA busy time also bounds the makespan
                totals: dict[str, float] = {}
                for n in range(len(domains)):
                    if f"dnn{n}" not in partial:
                        continue
                    for a, t in busy(n, partial[f"dnn{n}"]).items():
                        totals[a] = totals.get(a, 0.0) + t
                busy_bound = max(totals.values(), default=0.0)
                return max(max(per_dnn), busy_bound)
            return -sum(
                formulation.repeats[n] / t if t > 0 else float("inf")
                for n, t in enumerate(per_dnn)
            )

        constraints = []
        for names in self.symmetry_classes(workload):
            for left, right in zip(names, names[1:]):

                def ordered(
                    partial: Assignment,
                    left: str = left,
                    right: str = right,
                ) -> bool:
                    a, b = partial.get(left), partial.get(right)
                    return a is None or b is None or a <= b

                constraints.append(ordered)

        # Vectorized sibling bounds: per stream, one aligned table of
        # every domain value's isolated chain time / per-DSA busy time
        # / chain energy, so the solver prices a node's whole child
        # set with numpy gathers instead of one lower_bound call per
        # child.  Bit-identity with the scalar bound is load-bearing
        # (identical floats -> identical prune decisions -> identical
        # trees): terms are added in stream-index order with the
        # branched stream contributing a vector, zero-adds are exact
        # for the non-negative times involved, and max/negate
        # reductions are exact for IEEE doubles in any order.
        n_streams = len(domains)
        val_index = [
            {a: i for i, a in enumerate(domain)} for domain in domains
        ]
        chain_tab = [
            np.array([chain(n, a) for a in domain])
            for n, domain in enumerate(domains)
        ]
        busy_tab = [
            np.array(
                [
                    [busy(n, a).get(acc, 0.0) for a in domain]
                    for acc in accel_names
                ]
            )
            for n, domain in enumerate(domains)
        ]
        energy_tab = (
            [
                np.array([formulation.chain_energy(n, a) for a in domain])
                for n, domain in enumerate(domains)
            ]
            if formulation.objective == "energy"
            else None
        )

        def child_bounds(
            partial: Assignment, variable: Variable
        ) -> np.ndarray:
            b = int(variable.name[3:])
            index = val_index[b]
            idx = np.fromiter(
                (index[v] for v in variable.domain),
                dtype=int,
                count=len(variable.domain),
            )
            if formulation.objective == "energy":
                assert energy_tab is not None
                acc = np.zeros(idx.size)
                for n in range(n_streams):
                    if n == b:
                        acc = acc + energy_tab[n][idx]
                    elif f"dnn{n}" in partial:
                        acc = acc + formulation.chain_energy(
                            n, partial[f"dnn{n}"]
                        )
                    else:
                        acc = acc + min_energy[n]
                return acc
            if formulation.objective == "latency":
                # max over per_dnn folds the branched stream in last;
                # max is order-insensitive in value for floats
                other = float("-inf")
                for n in range(n_streams):
                    if n == b:
                        continue
                    t = (
                        chain(n, partial[f"dnn{n}"])
                        if f"dnn{n}" in partial
                        else min_chain[n]
                    )
                    if t > other:
                        other = t
                per_vec = np.maximum(chain_tab[b][idx], other)
                tot = np.zeros((len(accel_names), idx.size))
                for n in range(n_streams):
                    if n == b:
                        tot = tot + busy_tab[n][:, idx]
                    elif f"dnn{n}" in partial:
                        col = busy_tab[n][:, val_index[n][partial[f"dnn{n}"]]]
                        tot = tot + col[:, None]
                return np.maximum(per_vec, tot.max(axis=0))
            # throughput: negated sum of per-stream rates, stream order
            acc = np.zeros(idx.size)
            for n in range(n_streams):
                if n == b:
                    t_vec = chain_tab[n][idx]
                    term = np.full(idx.size, float("inf"))
                    pos = t_vec > 0
                    term[pos] = formulation.repeats[n] / t_vec[pos]
                    acc = acc + term
                else:
                    t = (
                        chain(n, partial[f"dnn{n}"])
                        if f"dnn{n}" in partial
                        else min_chain[n]
                    )
                    acc = acc + (
                        formulation.repeats[n] / t if t > 0 else float("inf")
                    )
            return -acc

        return Problem(
            variables=variables,
            objective=objective,
            constraints=constraints,
            lower_bound=lower_bound,
            child_bounds=child_bounds,
            frontier_evaluate=frontier_evaluate,
        )

    def dominance_reduced(
        self, formulation: Formulation, problem: Problem
    ) -> Problem | None:
        """Heuristically reduced problem for portfolio *hunter* workers.

        Per stream, drop every assignment weakly dominated in
        (isolated chain time, per-accelerator busy time, chain energy)
        by another assignment.  Contention couples streams, so a
        dominated assignment can in principle be part of the true
        optimum -- hunters searching this problem find good incumbents
        fast but never certify optimality; exact workers on the full
        problem do.  Returns ``None`` when nothing was reducible.
        """
        accel_names = self.platform.accelerator_names
        variables = []
        reduced_any = False
        for n, var in enumerate(problem.variables):
            metrics = []
            for a in var.domain:
                busy = formulation.busy_times(n, a)
                metrics.append(
                    (
                        formulation.chain_time(n, a),
                        formulation.chain_energy(n, a),
                        *(busy.get(acc, 0.0) for acc in accel_names),
                    )
                )
            keep = []
            for i, a in enumerate(var.domain):
                dominated = False
                for j in range(len(var.domain)):
                    if j == i:
                        continue
                    better_eq = all(
                        x <= y for x, y in zip(metrics[j], metrics[i])
                    )
                    # exact metric ties keep the earliest value only
                    if better_eq and (metrics[j] != metrics[i] or j < i):
                        dominated = True
                        break
                if not dominated:
                    keep.append(a)
            if not keep:  # defensive; a non-dominated value always exists
                keep = list(var.domain)
            reduced_any = reduced_any or len(keep) < len(var.domain)
            variables.append(Variable(var.name, tuple(keep)))
        if not reduced_any:
            return None
        return Problem(
            variables=variables,
            objective=problem.objective,
            constraints=problem.constraints,
            lower_bound=problem.lower_bound,
            # the table closure indexes by value, so reduced domains
            # (subsets of the full ones) gather correctly
            child_bounds=problem.child_bounds,
            frontier_evaluate=problem.frontier_evaluate,
        )

    def contention_oblivious_seeds(
        self,
        workload: Workload,
        formulation: Formulation,
        problem: Problem,
    ) -> list[tuple[str, dict[str, tuple[str, ...]]]]:
        """Warm starts from the contention-oblivious baselines.

        ``gpu-only`` (everything concurrent on the GPU),
        ``best-isolated`` (each stream on its fastest single DSA by
        isolated chain time), and ``spread`` (streams rotated across
        accelerators, the naive-concurrent shape).  Only
        domain-feasible uniform assignments are used, so the portfolio
        root incumbent is never worse than the best of these.
        """
        gpu = self.platform.gpu.name
        accel_names = self.platform.accelerator_names
        uniform: list[dict[str, tuple[str, ...]]] = [
            {a[0]: a for a in var.domain if len(set(a)) == 1}
            for var in problem.variables
        ]
        candidates: list[tuple[str, dict[str, tuple[str, ...]]]] = []

        if all(gpu in u for u in uniform):
            candidates.append(
                (
                    "gpu-only",
                    {
                        var.name: uniform[n][gpu]
                        for n, var in enumerate(problem.variables)
                    },
                )
            )
        if all(uniform):
            candidates.append(
                (
                    "best-isolated",
                    {
                        var.name: min(
                            uniform[n].values(),
                            key=lambda a: formulation.chain_time(n, a),
                        )
                        for n, var in enumerate(problem.variables)
                    },
                )
            )
            spread = {}
            for n, var in enumerate(problem.variables):
                preferred = accel_names[n % len(accel_names)]
                spread[var.name] = uniform[n].get(
                    preferred, uniform[n].get(gpu, next(iter(uniform[n].values())))
                )
            candidates.append(("spread", spread))

        return [
            (label, self.canonicalize_assignment(workload, assignment))
            for label, assignment in candidates
        ]

    # ------------------------------------------------------------------
    def result_from_assignments(
        self,
        workload: Workload,
        formulation: Formulation,
        assignments: Sequence[Sequence[str]],
        *,
        scheduler_name: str = "manual",
        serialized: bool = False,
    ) -> ScheduleResult:
        """Wrap explicit assignments into a :class:`ScheduleResult`.

        Used by D-HaX-CoNN to materialize solver incumbents and by
        tests that probe specific mappings.
        """
        predicted = formulation.evaluate(
            assignments, serialized=serialized, check_exclusive=False
        )
        schedule = Schedule(
            per_dnn=tuple(
                DNNSchedule(dnn_name=workload.names[n], assignment=tuple(a))
                for n, a in enumerate(assignments)
            ),
            serialized=serialized,
            meta={"scheduler": scheduler_name},
        )
        return ScheduleResult(
            schedule=schedule,
            predicted=predicted,
            solver=None,
            formulation=formulation,
        )

    def results_from_assignments(
        self,
        workload: Workload,
        formulation: Formulation,
        batch: Sequence[Sequence[Sequence[str]]],
        *,
        scheduler_name: str = "manual",
        serialized: bool = False,
    ) -> list[ScheduleResult]:
        """Batched :meth:`result_from_assignments`.

        The whole batch is predicted in one
        :meth:`Formulation.evaluate_frontier` call -- certified
        bit-identical to the scalar path by the frontier engine's
        differential tests -- so callers materializing many candidate
        mappings at once (the serving policy's anytime swap plan) pay
        one vectorized evaluation instead of a Python loop.
        """
        predictions = formulation.evaluate_frontier(
            batch, serialized=serialized, check_exclusive=False
        )
        results: list[ScheduleResult] = []
        for assignments, predicted in zip(batch, predictions):
            if isinstance(predicted, Exception):
                raise predicted
            schedule = Schedule(
                per_dnn=tuple(
                    DNNSchedule(
                        dnn_name=workload.names[n], assignment=tuple(a)
                    )
                    for n, a in enumerate(assignments)
                ),
                serialized=serialized,
                meta={"scheduler": scheduler_name},
            )
            results.append(
                ScheduleResult(
                    schedule=schedule,
                    predicted=predicted,
                    solver=None,
                    formulation=formulation,
                )
            )
        return results

    def serialized_gpu_schedule(
        self, workload: Workload, formulation: Formulation
    ) -> tuple[Schedule, EvaluationResult]:
        """The paper's fallback: everything on the GPU, back-to-back."""
        gpu = self.platform.gpu.name
        assignments = [
            tuple(gpu for _ in range(len(p))) for p in formulation.profiles
        ]
        predicted = formulation.evaluate(assignments, serialized=True)
        schedule = Schedule(
            per_dnn=tuple(
                DNNSchedule(dnn_name=workload.names[n], assignment=a)
                for n, a in enumerate(assignments)
            ),
            serialized=True,
            meta={"scheduler": "haxconn-serial-fallback"},
        )
        return schedule, predicted

    def schedule(
        self,
        workload: Workload,
        *,
        on_incumbent: Callable[[Incumbent], None] | None = None,
        initial: Sequence[Sequence[str]] | None = None,
        warm_starts: Sequence[
            tuple[str, Sequence[Sequence[str]]]
        ] = (),
        memo_seed: Sequence[tuple[Any, Any]] = (),
        serial_fallback: bool = True,
        scheduler_name: str = "haxconn",
        verify: bool | None = None,
    ) -> ScheduleResult:
        """Find the optimal schedule for ``workload``.

        ``initial`` optionally seeds the solver (D-HaX-CoNN starts
        from the best naive schedule).  ``warm_starts`` are labeled
        per-stream assignment seeds -- the schedule cache supplies
        fragments from similar mixes -- consumed by the portfolio
        solver (silently unused by plain ``bnb``).  With
        ``serial_fallback`` (the default) the serialized GPU-only
        schedule is also evaluated, so the returned schedule is never
        worse than that baseline *under the cost model* -- the
        Herald/H2H reimplementations disable this, as those
        schedulers always co-locate.

        ``verify`` (default: the constructor's ``verify`` flag) runs
        the returned schedule through the independent certificate
        checker (:mod:`repro.analysis.verify`) and raises
        :class:`repro.analysis.CertificateError` if any Eq. 1-11
        constraint or the claimed objective fails to re-derive.

        ``memo_seed`` pre-loads the fresh formulation's evaluation
        memo with entries persisted by earlier solves (the serving
        fleet's solve store).  Memo entries are pure -- bit-identical
        to recomputation -- so seeding changes solve *speed*, never
        the returned schedule.
        """
        formulation, _profiles = self.build_formulation(workload)
        if memo_seed:
            formulation.engine.memo.merge(memo_seed)
        problem = self.build_problem(workload, formulation)
        seed = None
        if initial is not None:
            seed = self.canonicalize_assignment(
                workload,
                {f"dnn{n}": tuple(a) for n, a in enumerate(initial)},
            )
        if self.solver == "portfolio":
            problem_guide = None
            if self.guide is not None:
                problem_guide = self.guide.for_problem(
                    self, workload, formulation=formulation, problem=problem
                )
            portfolio = PortfolioSolver(
                workers=self.solver_workers,
                time_budget_s=self.time_budget_s,
                node_budget=self.node_budget,
                on_incumbent=on_incumbent,
                seed=self.solver_seed,
                backend=self.solver_backend,
                clock=self.solver_clock,
                transport=self.solver_transport,
                # workers trade evaluation-memo entries at epoch syncs
                # and the parent keeps the union, so D-HaX-CoNN's next
                # re-solve of a similar mix starts memo-warm
                shared_state=formulation.engine.memo,
                guide=(
                    problem_guide.scores
                    if problem_guide is not None
                    else None
                ),
            )
            seeds = self.contention_oblivious_seeds(
                workload, formulation, problem
            )
            for label, per_stream in warm_starts:
                seeds.append(
                    (
                        label,
                        self.canonicalize_assignment(
                            workload,
                            {
                                f"dnn{n}": tuple(a)
                                for n, a in enumerate(per_stream)
                            },
                        ),
                    )
                )
            if problem_guide is not None:
                # predicted-optimum seeds: evaluated at the root like
                # any other warm start, so a wrong prediction costs one
                # evaluation, never a wrong result
                seeds.extend(
                    (label, self.canonicalize_assignment(workload, guess))
                    for label, guess in problem_guide.synthesized_seeds()
                )
            result = portfolio.solve(
                problem,
                initial=seed,
                seeds=seeds,
                reduced=self.dominance_reduced(formulation, problem),
            )
        elif callable(self.solver):
            result = self.solver(
                problem, initial=seed, on_incumbent=on_incumbent
            )
        else:
            solver = BranchAndBound(
                time_budget_s=self.time_budget_s,
                node_budget=self.node_budget,
                on_incumbent=on_incumbent,
            )
            result = solver.solve(problem, initial=seed)

        serial_schedule = serial_predicted = None
        if serial_fallback:
            serial_schedule, serial_predicted = self.serialized_gpu_schedule(
                workload, formulation
            )

        if result.best is not None:
            assignments = [
                result.best.assignment[f"dnn{n}"]
                for n in range(len(workload))
            ]
            predicted = formulation.evaluate(assignments)
            # require the concurrent optimum to beat the serialized
            # GPU-only fallback by a small margin: the cost model
            # carries a few percent of error against the runtime, and
            # the paper's guarantee is "never worse than the naive
            # baselines"
            threshold = (
                None
                if serial_predicted is None
                else serial_predicted.objective
                - self.fallback_margin * abs(serial_predicted.objective)
            )
            if threshold is None or predicted.objective <= threshold:
                schedule = Schedule(
                    per_dnn=tuple(
                        DNNSchedule(
                            dnn_name=workload.names[n], assignment=tuple(a)
                        )
                        for n, a in enumerate(assignments)
                    ),
                    serialized=False,
                    meta={
                        "scheduler": scheduler_name,
                        "optimal": result.optimal,
                        "nodes": result.nodes_explored,
                    },
                )
                return self._maybe_verify(
                    ScheduleResult(
                        schedule=schedule,
                        predicted=predicted,
                        solver=result,
                        formulation=formulation,
                    ),
                    verify,
                )

        if serial_schedule is None or serial_predicted is None:
            raise Infeasible(
                f"no feasible concurrent schedule for {workload.names} "
                "and serial fallback disabled"
            )
        return self._maybe_verify(
            ScheduleResult(
                schedule=serial_schedule,
                predicted=serial_predicted,
                solver=result,
                formulation=formulation,
            ),
            verify,
        )

    def _maybe_verify(
        self, result: ScheduleResult, verify: bool | None
    ) -> ScheduleResult:
        if self.verify if verify is None else verify:
            # deferred import: repro.analysis depends on this module's
            # package at runtime (schedule_cache signatures)
            from repro.analysis.diagnostics import require
            from repro.analysis.verify import verify_result

            require(
                verify_result(
                    result, max_transitions=self.max_transitions
                ),
                "HaXCoNN.schedule",
            )
        return result
