"""Shared-memory ring-buffer transport for epoch-sync payloads.

The portfolio solver and the serving fleet exchange bulk epoch
payloads -- evaluation-memo deltas and solve gossip -- between fork
workers and the parent.  Those payloads used to ride inside the
control messages on :class:`multiprocessing.SimpleQueue`, which means
every epoch serializes kilobytes through a pipe one ``write(2)`` /
``read(2)`` pair at a time.  :class:`ShmRing` moves the bulk bytes
into a :mod:`multiprocessing.shared_memory` segment instead: the
control message shrinks to a fixed-size token and the payload crosses
the process boundary as a single memcpy.

Design rules (and what they buy):

* **Single writer, single reader, per direction.**  Every
  (worker, parent) pair gets two rings -- one up, one down -- so no
  ring ever has two writers and no lock is needed.
* **Control stays on the queue.**  A payload token is only ever read
  *after* the matching control message arrives through the pipe, and a
  pipe round-trip is a synchronization point: the writer's memcpy
  happens-before the reader's.  The ring adds no ordering of its own.
* **Records are self-validating.**  ``[u32 length][u32 crc32][payload]``,
  with the committed-offset header published only after the record
  body is fully written.  A reader never trusts bytes past the
  committed offset, and a record whose length or CRC does not check
  out is a *torn tail*: the valid prefix is kept and the garbage is
  ignored -- the same recovery contract as the solve store's JSONL
  torn-tail handling (``core/solve_store``).
* **Overflow degrades, never blocks.**  When the reader lags and the
  ring is full, :meth:`ShmRing.try_write` refuses the record and
  :class:`DeltaChannel` falls back to sending the payload inline on
  the control queue -- bit-identical content, just the slow path.
  Nothing ever spins on the ring.

Determinism: the transport moves opaque pickled bytes and preserves
send order per direction.  Which path a payload takes (ring or inline
fallback) can depend on timing, but the *content* delivered is
identical either way, and the portfolio/fleet parents merge payloads
in worker-index order regardless of arrival path -- so per-shard
reports and solver traces remain byte-identical across transports.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any

#: ring header: [0:8) committed write offset, [8:16) reader ack offset
#: (both monotone virtual offsets; data starts at byte 16)
_HEADER = 16
_U64 = struct.Struct("<Q")
#: per-record prefix: little-endian u32 length + u32 crc32(payload)
_REC = struct.Struct("<II")


class RingUnavailable(RuntimeError):
    """``multiprocessing.shared_memory`` cannot back a ring here."""


class TornRecord(RuntimeError):
    """A record failed validation (length or CRC) mid-read."""


def shared_memory_available() -> bool:
    """Best-effort probe for a usable shared-memory implementation."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=16)
    except (ImportError, OSError, PermissionError):
        return False
    probe.close()
    probe.unlink()
    return True


class ShmRing:
    """Bounded single-writer / single-reader shared-memory ring.

    Offsets are *virtual* (monotonically increasing, never wrapped);
    the data region is addressed modulo ``capacity``, so records may
    wrap around the physical end of the segment.  The writer publishes
    the committed offset only after the record body is in place; the
    reader publishes its ack offset only after consuming, which is
    what the writer's free-space check reads.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < _REC.size + 1:
            raise ValueError(f"capacity {capacity} too small for a record")
        from multiprocessing import shared_memory

        self.capacity = capacity
        try:
            self._shm = shared_memory.SharedMemory(
                create=True, size=_HEADER + capacity
            )
        except (OSError, PermissionError) as exc:
            raise RingUnavailable(f"shared memory unavailable: {exc}")
        buf = self._shm.buf
        assert buf is not None
        _U64.pack_into(buf, 0, 0)
        _U64.pack_into(buf, 8, 0)
        #: reader-local cursor (virtual offset of the next unread byte)
        self._read_off = 0
        self._closed = False

    # -- header accessors ----------------------------------------------
    @property
    def committed(self) -> int:
        """Virtual offset of the end of the last published record."""
        return int(_U64.unpack_from(self._shm.buf, 0)[0])

    @property
    def acked(self) -> int:
        """Virtual offset the reader has consumed up to."""
        return int(_U64.unpack_from(self._shm.buf, 8)[0])

    @property
    def free_bytes(self) -> int:
        return self.capacity - (self.committed - self.acked)

    # -- raw circular IO ------------------------------------------------
    def _write_at(self, offset: int, payload: bytes) -> None:
        buf = self._shm.buf
        pos = offset % self.capacity
        first = min(len(payload), self.capacity - pos)
        buf[_HEADER + pos : _HEADER + pos + first] = payload[:first]
        rest = payload[first:]
        if rest:
            buf[_HEADER : _HEADER + len(rest)] = rest

    def _read_at(self, offset: int, size: int) -> bytes:
        buf = self._shm.buf
        pos = offset % self.capacity
        first = min(size, self.capacity - pos)
        out = bytes(buf[_HEADER + pos : _HEADER + pos + first])
        if first < size:
            out += bytes(buf[_HEADER : _HEADER + size - first])
        return out

    # -- writer ---------------------------------------------------------
    def try_write(self, payload: bytes) -> bool:
        """Append one record; ``False`` when the reader lags too far.

        Refusal (instead of blocking or overwriting) is the overflow
        contract: the caller falls back to its inline path and the
        reader's unconsumed records stay intact.
        """
        need = _REC.size + len(payload)
        if need > self.capacity - (self.committed - self.acked):
            return False
        offset = self.committed
        self._write_at(
            offset, _REC.pack(len(payload), zlib.crc32(payload)) + payload
        )
        # publish *after* the body: bytes past `committed` are garbage
        # by contract, so a crash mid-write tears nothing visible
        _U64.pack_into(self._shm.buf, 0, offset + need)
        return True

    # -- reader ---------------------------------------------------------
    def _parse_one(self, offset: int, limit: int) -> tuple[bytes, int]:
        """Validate and return the record at ``offset``; raises
        :class:`TornRecord` when length or CRC do not check out."""
        if limit - offset < _REC.size:
            raise TornRecord(
                f"truncated record header at offset {offset}"
            )
        length, crc = _REC.unpack(self._read_at(offset, _REC.size))
        if length > self.capacity - _REC.size:
            raise TornRecord(f"implausible record length {length}")
        if offset + _REC.size + length > limit:
            raise TornRecord(
                f"record at {offset} extends past committed offset"
            )
        payload = self._read_at(offset + _REC.size, length)
        if zlib.crc32(payload) != crc:
            raise TornRecord(f"CRC mismatch at offset {offset}")
        return payload, offset + _REC.size + length

    def read_one(self) -> bytes:
        """Consume exactly one record (the transport fast path)."""
        payload, nxt = self._parse_one(self._read_off, self.committed)
        self._read_off = nxt
        _U64.pack_into(self._shm.buf, 8, nxt)
        return payload

    def read_available(self) -> list[bytes]:
        """Consume every valid record; tolerate a torn tail.

        Mirrors the solve store's recovery semantics: the valid prefix
        is returned, the first invalid record and everything after it
        is dropped, and the cursor skips to the committed offset so a
        recovered writer can keep appending.
        """
        out: list[bytes] = []
        limit = self.committed
        offset = self._read_off
        while offset < limit:
            try:
                payload, offset = self._parse_one(offset, limit)
            except TornRecord:
                offset = limit  # drop the torn tail, keep the prefix
                break
            out.append(payload)
        self._read_off = offset
        _U64.pack_into(self._shm.buf, 8, offset)
        return out

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after workers exited)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked by a peer
            pass


#: token tags on the control queue (see :class:`DeltaChannel`)
_SHM, _INLINE = "shm", "inline"


class TagMismatch(RuntimeError):
    """A tagged record's round tag disagrees with its control token."""


class DeltaChannel:
    """One-direction transport for picklable epoch payloads.

    ``pack`` turns an object into a small token for the control
    queue: ``("shm",)`` when the pickled bytes landed in the ring,
    ``("inline", obj)`` when there is no ring or the ring is full
    (reader-lag overflow).  ``unpack`` inverts it on the other side.
    Tokens must be unpacked in send order -- the ring is FIFO.

    With ``tagged=True`` the channel speaks the *round-tagged*
    protocol the pipelined serving fleet needs: ``pack(obj, tag)``
    stamps the payload with an epoch tag, both inline (``("inline",
    tag, obj)``) and in the ring record (the pickled bytes are
    ``(tag, obj)``), and ``unpack`` re-checks that the ring record's
    embedded tag matches the control token's -- a cheap end-to-end
    guard that a lagging reader and a fast writer never pair a token
    with the wrong epoch's bytes.  Untagged channels keep the
    original token shapes, so the solver portfolio's transport is
    byte-for-byte unchanged.

    With ``ring=None`` the channel degenerates to the pickled-queue
    path, which is how the thread and serial backends (and the
    ``queue`` transport) speak the same protocol with zero copies of
    this code.
    """

    def __init__(
        self, ring: ShmRing | None = None, *, tagged: bool = False
    ) -> None:
        self.ring = ring
        self.tagged = tagged
        #: transport telemetry (benchmarks report these)
        self.sent_ring = 0
        self.sent_inline = 0
        self.ring_bytes = 0

    def pack(self, obj: Any, tag: Any = None) -> tuple[Any, ...]:
        if self.tagged and tag is None:
            raise ValueError("tagged channel needs a round tag")
        record = (tag, obj) if self.tagged else obj
        if self.ring is not None:
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            if self.ring.try_write(payload):
                self.sent_ring += 1
                self.ring_bytes += len(payload)
                return (_SHM, tag) if self.tagged else (_SHM,)
        self.sent_inline += 1
        return (_INLINE, tag, obj) if self.tagged else (_INLINE, obj)

    def unpack(self, token: tuple[Any, ...]) -> Any:
        if token[0] == _SHM:
            assert self.ring is not None, "shm token without a ring"
            record = pickle.loads(self.ring.read_one())
            if not self.tagged:
                return record
            tag, obj = record
            if tag != token[1]:
                raise TagMismatch(
                    f"ring record tagged {tag!r}, token says {token[1]!r}"
                )
            return obj
        return token[2] if self.tagged else token[1]

    def close(self) -> None:
        if self.ring is not None:
            self.ring.close()

    def unlink(self) -> None:
        if self.ring is not None:
            self.ring.unlink()


def make_channel_pair(
    capacity: int = 1 << 20, *, tagged: bool = False
) -> tuple[DeltaChannel, DeltaChannel]:
    """(up, down) ring channels for one worker, or inline channels
    when shared memory is unavailable on this host."""
    try:
        return (
            DeltaChannel(ShmRing(capacity), tagged=tagged),
            DeltaChannel(ShmRing(capacity), tagged=tagged),
        )
    except RingUnavailable:
        return DeltaChannel(None, tagged=tagged), DeltaChannel(None, tagged=tagged)
