"""D-HaX-CoNN: runtime adaptation of optimal scheduling (Section 3.5).

When the autonomous CFG changes (new DNN pairs appear), D-HaX-CoNN

1. starts executing immediately with the best *naive* schedule,
2. runs the solver on a CPU core concurrently with inference,
3. at periodic update points swaps in the best incumbent found so
   far, converging to the optimum while the loop keeps running
   (paper Fig. 7; solver co-run overhead is Table 7's <= 2%).

The solver here is the anytime branch-and-bound; its incumbents carry
wall-clock timestamps, so the phase trace reconstructs exactly which
schedule was active when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.haxconn import HaXCoNN, ScheduleResult
from repro.core.schedule import Schedule
from repro.core.workload import Workload
from repro.soc.platform import Platform

#: paper Fig. 7 schedule-update instants (seconds after phase start);
#: the tail points let long solves land (the paper observes convergence
#: between 1.3 s and 5.8 s depending on the pair's group count)
DEFAULT_UPDATE_POINTS = (0.025, 0.100, 0.250, 0.500, 1.500, 3.0, 6.0, 10.0)


@dataclass(frozen=True)
class ScheduleUpdate:
    """One activation of a (better) schedule during a phase."""

    time_s: float
    latency_ms: float
    schedule: Schedule
    predicted_ms: float


@dataclass(frozen=True)
class PhaseTrace:
    """Execution trace of one workload phase (one Fig. 7 segment)."""

    workload: Workload
    updates: tuple[ScheduleUpdate, ...]
    #: measured latency of the certified-optimal schedule (yellow line)
    oracle_latency_ms: float
    #: per-frame samples: (time since phase start, latency of that frame)
    frames: tuple[tuple[float, float], ...]
    duration_s: float

    @property
    def initial_latency_ms(self) -> float:
        return self.updates[0].latency_ms

    @property
    def final_latency_ms(self) -> float:
        return self.updates[-1].latency_ms

    @property
    def converged(self) -> bool:
        """Did the phase reach the oracle latency (within 1%)?"""
        return self.final_latency_ms <= self.oracle_latency_ms * 1.01

    @property
    def convergence_time_s(self) -> float | None:
        """Phase time at which the active schedule first hit the oracle."""
        for u in self.updates:
            if u.latency_ms <= self.oracle_latency_ms * 1.01:
                return u.time_s
        return None


@dataclass
class DynamicTrace:
    """A full dynamic run: several workload phases back to back."""

    phases: list[PhaseTrace] = field(default_factory=list)

    @property
    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)


class DHaXCoNN:
    """Dynamic scheduler driver around an anytime :class:`HaXCoNN`."""

    def __init__(
        self,
        scheduler: HaXCoNN,
        *,
        update_points: Sequence[float] = DEFAULT_UPDATE_POINTS,
        solver_bw: float = 0.0,
        solver: str | None = None,
        solver_workers: int | None = None,
    ) -> None:
        if any(t <= 0 for t in update_points):
            raise ValueError("update points must be positive")
        self.scheduler = scheduler
        self.update_points = tuple(sorted(update_points))
        #: DRAM traffic of the co-running solver (Table 7 overhead)
        self.solver_bw = solver_bw
        # convenience overrides: the anytime solver lives on the
        # wrapped scheduler, so `solver=`/`solver_workers=` here
        # reconfigure it in place
        if solver is not None:
            if solver not in ("bnb", "portfolio"):
                raise ValueError(
                    f"solver must be 'bnb' or 'portfolio', got {solver!r}"
                )
            scheduler.solver = solver
        if solver_workers is not None:
            scheduler.solver_workers = solver_workers

    @property
    def platform(self) -> Platform:
        return self.scheduler.platform

    # ------------------------------------------------------------------
    def _measure(self, result: ScheduleResult) -> float:
        """Ground-truth per-round latency in ms (solver co-running)."""
        # imported here: repro.runtime depends on repro.core, so a
        # module-level import would be circular
        from repro.runtime.executor import run_schedule

        execution = run_schedule(
            result, self.platform, background_bw=self.solver_bw
        )
        return execution.latency_ms

    def _initial_naive(
        self, workload: Workload
    ) -> ScheduleResult:
        """Best naive schedule by predicted cost (paper footnote 1:
        Herald/H2H are no seeds -- they also take seconds)."""
        from repro.core.baselines import gpu_only, naive_concurrent

        candidates = [
            gpu_only(
                workload,
                self.platform,
                db=self.scheduler.db,
                max_groups=self.scheduler.max_groups,
            ),
            naive_concurrent(
                workload,
                self.platform,
                db=self.scheduler.db,
                max_groups=self.scheduler.max_groups,
            ),
        ]
        return min(candidates, key=lambda r: r.predicted.objective)

    def run_phase(
        self, workload: Workload, *, duration_s: float = 10.0
    ) -> PhaseTrace:
        """Execute one phase: naive start, anytime refinement, frames."""
        initial = self._initial_naive(workload)
        solve = self.scheduler.schedule(workload)
        formulation = solve.formulation

        # reconstruct which incumbent was active at each update point
        updates: list[ScheduleUpdate] = [
            ScheduleUpdate(
                time_s=0.0,
                latency_ms=self._measure(initial),
                schedule=initial.schedule,
                predicted_ms=initial.predicted.makespan * 1e3,
            )
        ]
        incumbents = solve.solver.incumbents if solve.solver else []
        best_so_far = None
        for point in self.update_points:
            candidates = [i for i in incumbents if i.wall_time_s <= point]
            if not candidates:
                continue
            best = min(candidates, key=lambda i: i.objective)
            if best_so_far is not None and best is best_so_far:
                continue
            best_so_far = best
            result = self.scheduler.result_from_assignments(
                workload,
                formulation,
                [
                    best.assignment[f"dnn{n}"]
                    for n in range(len(workload))
                ],
                scheduler_name="d-haxconn",
            )
            latency = self._measure(result)
            if latency < updates[-1].latency_ms:
                updates.append(
                    ScheduleUpdate(
                        time_s=point,
                        latency_ms=latency,
                        schedule=result.schedule,
                        predicted_ms=result.predicted.makespan * 1e3,
                    )
                )

        oracle_latency = self._measure(solve)

        # once the solver finishes, its final choice (which may be the
        # serialized fallback -- never part of the incumbent stream)
        # becomes available at the next update instant
        solver_done_s = (
            solve.solver.wall_time_s if solve.solver else 0.0
        )
        adopt_at = next(
            (p for p in self.update_points if p >= solver_done_s),
            solver_done_s,  # solver outran every update point
        )
        if oracle_latency < updates[-1].latency_ms:
            updates.append(
                ScheduleUpdate(
                    time_s=max(adopt_at, updates[-1].time_s),
                    latency_ms=oracle_latency,
                    schedule=solve.schedule,
                    predicted_ms=solve.predicted.makespan * 1e3,
                )
            )

        # frame-by-frame latency trace under the active schedule
        frames: list[tuple[float, float]] = []
        t = 0.0
        idx = 0
        while t < duration_s:
            while (
                idx + 1 < len(updates) and updates[idx + 1].time_s <= t
            ):
                idx += 1
            latency_ms = updates[idx].latency_ms
            frames.append((t, latency_ms))
            t += latency_ms / 1e3

        return PhaseTrace(
            workload=workload,
            updates=tuple(updates),
            oracle_latency_ms=oracle_latency,
            frames=tuple(frames),
            duration_s=duration_s,
        )

    def run(
        self,
        workloads: Sequence[Workload],
        *,
        phase_duration_s: float = 10.0,
    ) -> DynamicTrace:
        """Run several phases back-to-back (Fig. 7's changing CFG)."""
        trace = DynamicTrace()
        for workload in workloads:
            trace.phases.append(
                self.run_phase(workload, duration_s=phase_duration_s)
            )
        return trace
