"""Fig. 5: Scenario 1 throughput (two instances of the same DNN)."""

from repro.experiments import fig5_scenario1

from conftest import full_run


def test_fig5_scenario1(benchmark, save_report):
    models = (
        fig5_scenario1.DEFAULT_MODELS
        if full_run()
        else ("googlenet", "resnet101", "inception")
    )
    rows = benchmark.pedantic(
        fig5_scenario1.run, kwargs={"models": models}, rounds=1, iterations=1
    )
    save_report("fig5_scenario1", fig5_scenario1.format_results(rows))

    for row in rows:
        baselines = [
            float(row["gpu_only_fps"]),
            float(row["naive_fps"]),
            float(row["mensa_fps"]),
        ]
        # paper: HaX-CoNN boosts FPS up to 29% and never loses
        assert float(row["haxconn_fps"]) >= max(baselines) * 0.99
    improvements = [float(r["improvement_pct"]) for r in rows]
    assert max(improvements) > 3.0
