"""Table 7: on-the-fly solver overhead."""

from repro.experiments import table7_overhead

from conftest import full_run


def test_table7_overhead(benchmark, save_report):
    corunners = (
        table7_overhead.DEFAULT_CORUNNERS
        if full_run()
        else ("caffenet", "googlenet", "resnet101", "vgg19")
    )
    rows = benchmark.pedantic(
        table7_overhead.run,
        kwargs={"corunners": corunners},
        rounds=1,
        iterations=1,
    )
    save_report("table7_overhead", table7_overhead.format_results(rows))

    # paper: running the solver during inference costs <= 2%
    for row in rows:
        assert 0.0 <= float(row["overhead_pct"]) <= 2.0, row
