"""Fig. 7: D-HaX-CoNN convergence across workload phases."""

from repro.core.workload import Workload
from repro.experiments import fig7_dynamic

from conftest import full_run


def test_fig7_dynamic(benchmark, save_report):
    if full_run():
        kwargs = {"phase_duration_s": 10.0}
    else:
        kwargs = {
            "phases": [
                Workload.concurrent(
                    "resnet152", "inception", objective="latency"
                ),
                Workload.concurrent(
                    "vgg19", "resnet152", objective="latency"
                ),
            ],
            "phase_duration_s": 3.0,
        }
    rows = benchmark.pedantic(
        fig7_dynamic.run, kwargs=kwargs, rounds=1, iterations=1
    )
    save_report("fig7_dynamic", fig7_dynamic.format_results(rows))

    for row in rows:
        # D-HaX-CoNN improves monotonically from the naive start and
        # reaches the oracle (paper: convergence within 1.3-5.8 s)
        assert float(row["final_ms"]) <= float(row["initial_ms"])
        assert bool(row["converged"]), row
    assert any(
        float(r["final_ms"]) < float(r["initial_ms"]) * 0.98 for r in rows
    )
