"""Fig. 1: VGG-19 + ResNet-101 case study on Xavier AGX."""

from repro.experiments import fig1_case_study


def test_fig1_case_study(benchmark, save_report):
    rows = benchmark.pedantic(
        fig1_case_study.run, rounds=1, iterations=1
    )
    save_report("fig1_case_study", fig1_case_study.format_results(rows))

    latencies = [float(r["latency_ms"]) for r in rows]
    serial, naive, hax = latencies
    # paper: serial 11.3 ms > naive 10.6 ms > HaX-CoNN split
    assert hax < naive < serial
    assert rows[2]["transitions"] >= 1
