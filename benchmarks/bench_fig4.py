"""Fig. 4: contention intervals of co-running layers."""

from repro.experiments import fig4_intervals


def test_fig4_intervals(benchmark, save_report):
    rows = benchmark(fig4_intervals.run)
    slowdowns = fig4_intervals.layer_slowdowns()
    lines = [fig4_intervals.format_results(rows), ""]
    for layer, s in sorted(slowdowns.items()):
        lines.append(f"{layer}: slowdown {s:.3f}x")
    save_report("fig4_intervals", "\n".join(lines))

    # the paper's point: slowdown is non-uniform across layers and
    # changes with the co-runner set
    assert len(slowdowns) == 5
    assert max(slowdowns.values()) - min(slowdowns.values()) > 0.2
    assert len(rows) >= 5  # multiple distinct contention intervals
