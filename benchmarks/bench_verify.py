"""Verifier overhead benchmark: certification must stay cheap.

The certificate checker re-derives every schedule from first
principles, so its cost is the price of ``verify=True`` debug runs and
of cache-admission auditing in the serving layer.  This bench times
``verify_result`` against the cost of *producing* the schedule it
checks, across the paper's 2- and 3-network scenarios, and writes the
table to ``benchmarks/results/verify_overhead.txt``.

Acceptance: certification is at most half the scheduling cost on
every scenario (in practice it is far below that; the bound is loose
because shared CI hardware is noisy), and every certificate is clean.
"""

from __future__ import annotations

import time

from repro.analysis.verify import verify_result
from repro.core.haxconn import HaXCoNN
from repro.core.workload import Workload
from repro.profiling.database import ProfileDB
from repro.soc.platform import get_platform

SCENARIOS = [
    ("alexnet", "resnet18"),
    ("googlenet", "mobilenet_v1"),
    ("vgg16", "resnet18", "googlenet"),
]
#: verify_result must cost at most this fraction of schedule()
OVERHEAD_RATIO = 0.5
REPEATS = 3


def _time_once(fn):
    t = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t


def _bench_scenario(scheduler, models):
    workload = Workload.concurrent(*models)
    result, solve_s = _time_once(
        lambda: scheduler.schedule(workload)
    )
    verify_s = float("inf")
    for _ in range(REPEATS):  # best-of: overhead claim, not a mean
        cert, elapsed = _time_once(
            lambda: verify_result(
                result, max_transitions=scheduler.max_transitions
            )
        )
        assert cert.ok, cert.describe()
        verify_s = min(verify_s, elapsed)
    return {
        "mix": "+".join(models),
        "solve_ms": solve_s * 1e3,
        "verify_ms": verify_s * 1e3,
        "ratio": verify_s / solve_s,
        "checks": len(cert.checks_run),
    }


def format_results(rows):
    header = (
        f"{'mix':<28} {'solve_ms':>10} {'verify_ms':>10} "
        f"{'ratio':>7} {'checks':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['mix']:<28} {r['solve_ms']:>10.2f} "
            f"{r['verify_ms']:>10.2f} {r['ratio']:>7.3f} "
            f"{r['checks']:>7}"
        )
    return "\n".join(lines)


def test_bench_verify_overhead(save_report):
    platform = get_platform("xavier")
    db = ProfileDB(platform)
    scheduler = HaXCoNN(
        platform, db=db, max_groups=3, max_transitions=1
    )
    rows = [_bench_scenario(scheduler, m) for m in SCENARIOS]
    for r in rows:
        assert r["ratio"] <= OVERHEAD_RATIO, (
            f"{r['mix']}: verifying cost {r['ratio']:.2f}x of "
            f"scheduling (limit {OVERHEAD_RATIO})"
        )
    save_report("verify_overhead", format_results(rows))
