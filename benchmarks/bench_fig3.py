"""Fig. 3: EMC utilization sweep over conv input/filter sizes."""

import numpy as np

from repro.experiments import fig3_emc_sweep


def test_fig3_emc_sweep(benchmark, save_report):
    rows = benchmark(fig3_emc_sweep.run)
    save_report("fig3_emc_sweep", fig3_emc_sweep.format_results(rows))

    assert len(rows) == 25
    gpu = np.array([float(r["gpu_util_pct"]) for r in rows])
    dla = np.array([float(r["dla_util_pct"]) for r in rows])
    # paper: GPU and DLA EMC utilization are correlated & proportional
    assert np.corrcoef(gpu, dla)[0, 1] > 0.6
    # paper: larger filters -> higher arithmetic intensity -> lower util
    i1 = [r for r in rows if r["input"] == "i1"]
    assert float(i1[0]["gpu_util_pct"]) > float(i1[-1]["gpu_util_pct"])
