"""Fig. 6: GoogleNet-on-GPU contention slowdown vs co-runners."""

from repro.experiments import fig6_slowdown

from conftest import full_run


def test_fig6_slowdown(benchmark, save_report):
    corunners = (
        fig6_slowdown.DEFAULT_CORUNNERS
        if full_run()
        else ("resnet50", "resnet101", "inception")
    )
    rows = benchmark.pedantic(
        fig6_slowdown.run,
        kwargs={"corunners": corunners},
        rounds=1,
        iterations=1,
    )
    save_report("fig6_slowdown", fig6_slowdown.format_results(rows))

    naive = [float(r["naive_slowdown"]) for r in rows]
    hax = [float(r["haxconn_slowdown"]) for r in rows]
    # paper: baseline slowdowns are substantial (up to ~1.7x) and
    # HaX-CoNN reduces the aggregate contention
    assert max(naive) > 1.2
    assert sum(hax) < sum(naive)
