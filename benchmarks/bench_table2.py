"""Table 2: GoogleNet layer-group profile on Xavier AGX."""

from repro.experiments import table2_layer_groups


def test_table2_layer_groups(benchmark, save_report):
    rows = benchmark(table2_layer_groups.run)
    save_report(
        "table2_layer_groups", table2_layer_groups.format_results(rows)
    )

    assert len(rows) == 10
    ratios = [float(r["ratio"]) for r in rows if r["ratio"]]
    # paper: DLA/GPU ratio varies 1.40x - 2.02x across groups
    assert min(ratios) > 1.0
    assert max(ratios) / min(ratios) > 1.2
    # paper: memory throughput 42% - 78%
    utils = [float(r["mem_thr_pct"]) for r in rows]
    assert max(utils) > 40
