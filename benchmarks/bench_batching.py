"""Batching vs concurrency study."""

from repro.experiments import batching

from conftest import full_run


def test_batching_vs_concurrency(benchmark, save_report):
    models = batching.DEFAULT_MODELS if full_run() else ("googlenet",)
    rows = benchmark.pedantic(
        batching.run, kwargs={"models": models}, rounds=1, iterations=1
    )
    save_report("batching", batching.format_results(rows))

    for row in rows:
        # batching always raises the per-frame latency floor
        assert float(row["batched_latency_ms"]) > 0
        assert float(row["concurrent_fps"]) > 0
        # the trade is real: neither option dominates by an order of
        # magnitude
        ratio = float(row["batched_gpu_fps"]) / float(
            row["concurrent_fps"]
        )
        assert 0.3 < ratio < 3.0
