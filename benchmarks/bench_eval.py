"""Evaluation-engine benchmark: incremental 3x, frontier 10x scratch.

Tier-1 gate for two acceptance criteria on the 3-network reference
workload (the Table 6 scenario the solver race also uses):

* the incremental engine behind ``Formulation.evaluate`` must sustain
  at least 3x the evaluations/second of the from-scratch baseline
  ``Formulation.evaluate_scratch`` over a branch-and-bound-shaped
  descent sequence of *distinct* assignments -- i.e. with zero memo
  hits, the speedup must come from the item tensor, prefix replay,
  and the slowdown caches alone;
* the frontier-batched path ``Formulation.evaluate_frontier`` must
  sustain at least 10x scratch over the *full* descent space (one
  lockstep NumPy batch), with every member's result -- objective,
  per-stream latencies, makespan, energy, fixed-point iteration
  count, and infeasible members' exception type and message --
  byte-identical to the scratch reference.

A machine-readable summary lands in
``benchmarks/results/eval_engine.json`` and a text report in
``benchmarks/results/eval_engine.txt``.

Wall-clock ratios on shared CI hardware are noisy, so the timing
assertions are retried a bounded number of times; the bit-identity
assertions (engine vs scratch equality) run on every attempt and are
never masked by a retry.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.formulation import Formulation
from repro.core.haxconn import HaXCoNN, enumerate_assignments
from repro.core.workload import Workload
from repro.experiments.common import get_db

#: acceptance threshold: incremental >= 3x scratch evals/sec
SPEEDUP = 3.0
#: acceptance threshold: frontier batch >= 10x scratch evals/sec
FRONTIER_SPEEDUP = 10.0
ATTEMPTS = 3

PLATFORM = "sd865"
MODELS = ("vgg19", "resnet152", "googlenet")
MAX_GROUPS = 6
MAX_TRANSITIONS = 2

#: per-stream candidate counts: the incremental descent (a solver-
#: shaped prefix) and the full frontier space (one lockstep batch)
DESCENT_SLICES = (8, 8, 5)
FRONTIER_SLICES = (16, 16, 5)

RESULTS_JSON = Path(__file__).parent / "results" / "eval_engine.json"


def _reference_sequence(slices=DESCENT_SLICES):
    """A descent-shaped sequence of distinct sibling assignments.

    Nested sweeps over per-stream candidates mimic the solver's DFS:
    consecutive evaluations differ in one stream's assignment, which
    is exactly the shape the prefix-replay path accelerates -- and
    the whole sweep is one giant sibling frontier, the shape the
    lockstep batch evaluates in a single call.
    """
    db = get_db(PLATFORM)
    workload = Workload.concurrent(*MODELS, objective="latency")
    scheduler = HaXCoNN(
        PLATFORM,
        db=db,
        max_groups=MAX_GROUPS,
        max_transitions=MAX_TRANSITIONS,
    )
    formulation, profiles = scheduler.build_formulation(workload)
    accels = [a.name for a in scheduler.platform.accelerators]
    cands = [
        enumerate_assignments(p, accels, max_transitions=MAX_TRANSITIONS)
        for p in profiles
    ]
    sequence = [
        [a0, a1, a2]
        for a0 in cands[0][: slices[0]]
        for a1 in cands[1][: slices[1]]
        for a2 in cands[2][: slices[2]]
    ]
    return formulation, sequence


def _fresh(formulation: Formulation) -> Formulation:
    """A same-spec formulation with cold engine caches."""
    return Formulation(
        formulation.profiles,
        formulation.repeats,
        formulation.objective,
        formulation.contention_model,
        include_transitions=formulation.include_transitions,
        resource_constrained=formulation.resource_constrained,
        pipeline=formulation.pipeline,
        epsilon_makespan_frac=formulation.epsilon_makespan_frac,
        accel_power_w=formulation.accel_power_w,
    )


def _timed(fn, sequence):
    start = time.perf_counter()
    out = [fn(a) for a in sequence]
    return time.perf_counter() - start, out


def _captured(fn, assignment):
    """Run one evaluation, returning raised infeasibility in place
    (the ``evaluate_many``/``evaluate_frontier`` convention)."""
    try:
        return fn(assignment)
    except Exception as exc:
        return exc


def _assert_identical(ref, got):
    """Field-wise byte-identity, exceptions included."""
    if isinstance(ref, Exception) or isinstance(got, Exception):
        assert type(ref) is type(got), (ref, got)
        assert str(ref) == str(got)
        return
    assert ref.objective == got.objective
    assert ref.per_dnn_time == got.per_dnn_time
    assert ref.makespan == got.makespan
    assert ref.energy_j == got.energy_j
    assert ref.fixed_point_iterations == got.fixed_point_iterations


def _measure_frontier():
    """Time the full descent space: scratch loop vs one lockstep batch.

    The scratch pass doubles as the byte-identity reference for every
    frontier member, infeasible ones included.
    """
    formulation, sequence = _reference_sequence(FRONTIER_SLICES)
    n = len(sequence)

    scratch_form = _fresh(formulation)
    t_scratch, ref = _timed(
        lambda a: _captured(scratch_form.evaluate_scratch, a), sequence
    )

    frontier_form = _fresh(formulation)
    start = time.perf_counter()
    got = frontier_form.evaluate_frontier(sequence)
    t_frontier = time.perf_counter() - start
    # bit-identity on every attempt: the speedup must not come from a
    # different answer (or a different failure)
    assert len(got) == n
    for a, b in zip(ref, got):
        _assert_identical(a, b)
    stats = frontier_form.engine.stats()
    assert stats["frontier_batches"] == 1
    assert stats["frontier_members"] == n

    return {
        "evals_frontier": n,
        "evals_per_s_scratch_full": n / t_scratch,
        "evals_per_s_frontier": n / t_frontier,
        "speedup_frontier": t_scratch / t_frontier,
        "frontier_lockstep": stats["frontier_lockstep"],
        "frontier_fallback": stats["frontier_fallback"],
    }


def _measure():
    formulation, sequence = _reference_sequence()
    n = len(sequence)

    scratch_form = _fresh(formulation)
    t_scratch, ref = _timed(scratch_form.evaluate_scratch, sequence)

    inc_form = _fresh(formulation)
    t_inc, got = _timed(inc_form.evaluate, sequence)
    # bit-identity on every attempt: the speedup must not come from a
    # different answer
    for a, b in zip(ref, got):
        assert a.objective == b.objective
        assert a.per_dnn_time == b.per_dnn_time
        assert a.fixed_point_iterations == b.fixed_point_iterations
    stats_inc = inc_form.engine.stats()
    assert stats_inc["memo_hits"] == 0, "distinct sequence must not hit"

    # memoized second pass over the same assignments
    t_memo, _ = _timed(inc_form.evaluate, sequence)
    stats_memo = inc_form.engine.stats()

    batch_form = _fresh(formulation)
    start = time.perf_counter()
    batch = batch_form.evaluate_many(sequence)
    t_batch = time.perf_counter() - start
    for a, b in zip(ref, batch):
        assert a.objective == b.objective

    # opt-in warm fixed point (exact=False): fewer iterations, not
    # bit-identical -- only the iteration savings are reported
    warm_form = _fresh(formulation)
    for a in sequence:
        warm_form.engine.evaluate(a, exact=False)
    stats_warm = warm_form.engine.stats()

    summary = {
        "workload": "+".join(MODELS),
        "platform": PLATFORM,
        "max_groups": MAX_GROUPS,
        "max_transitions": MAX_TRANSITIONS,
        "evals": n,
        "evals_per_s_scratch": n / t_scratch,
        "evals_per_s_incremental": n / t_inc,
        "evals_per_s_batch": n / t_batch,
        "evals_per_s_memoized": n / t_memo,
        "speedup_incremental": t_scratch / t_inc,
        "speedup_batch": t_scratch / t_batch,
        "memo_hit_rate_second_pass": (
            (stats_memo["memo_hits"] - stats_inc["memo_hits"]) / n
        ),
        "replayed_evals": stats_inc["replayed_evals"],
        "fp_iter_mean_exact": stats_inc["fp_iter_mean"],
        "fp_iter_mean_warm": stats_warm["fp_iter_mean"],
        "fp_iterations_saved_by_warm": (
            stats_inc["fp_iterations"] - stats_warm["fp_iterations"]
        ),
        "slowdown_cache_hit_rate": stats_inc["slowdown_cache_hit_rate"],
    }
    return summary


def _format(summary: dict) -> str:
    lines = [
        "Evaluation engine: incremental vs from-scratch "
        f"({summary['platform']}, {summary['workload']}, "
        f"groups<={summary['max_groups']}, "
        f"transitions<={summary['max_transitions']}, "
        f"{summary['evals']} distinct evals)",
        "-" * 72,
    ]
    for key in (
        "evals_per_s_scratch",
        "evals_per_s_incremental",
        "evals_per_s_batch",
        "evals_per_s_memoized",
        "speedup_incremental",
        "speedup_batch",
        "memo_hit_rate_second_pass",
        "replayed_evals",
        "fp_iter_mean_exact",
        "fp_iter_mean_warm",
        "fp_iterations_saved_by_warm",
        "slowdown_cache_hit_rate",
        "evals_frontier",
        "evals_per_s_scratch_full",
        "evals_per_s_frontier",
        "speedup_frontier",
        "frontier_lockstep",
        "frontier_fallback",
    ):
        lines.append(f"{key:32s} {summary[key]:12.3f}")
    return "\n".join(lines)


def test_bench_eval_engine(save_report):
    summary = None
    for _attempt in range(ATTEMPTS):
        summary = _measure()
        if summary["speedup_incremental"] >= SPEEDUP:
            break
    else:
        pytest.fail(
            f"incremental speedup {summary['speedup_incremental']:.2f}x < "
            f"{SPEEDUP}x after {ATTEMPTS} attempts "
            f"({summary['evals_per_s_incremental']:.0f} vs "
            f"{summary['evals_per_s_scratch']:.0f} evals/s)"
        )
    # warm starts must actually save fixed-point iterations
    assert summary["fp_iterations_saved_by_warm"] > 0

    frontier = None
    for _attempt in range(ATTEMPTS):
        frontier = _measure_frontier()
        if frontier["speedup_frontier"] >= FRONTIER_SPEEDUP:
            break
    else:
        pytest.fail(
            f"frontier speedup {frontier['speedup_frontier']:.2f}x < "
            f"{FRONTIER_SPEEDUP}x after {ATTEMPTS} attempts "
            f"({frontier['evals_per_s_frontier']:.0f} vs "
            f"{frontier['evals_per_s_scratch_full']:.0f} evals/s)"
        )
    summary.update(frontier)
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(summary, indent=2) + "\n")
    save_report("eval_engine", _format(summary))
