"""Solver-race benchmark: the portfolio must converge 2x faster.

Tier-1 gate for the ISSUE-2 acceptance criterion: on the 3-network
scenario the portfolio's time-to-within-5%-of-optimal must be at most
half the single-threaded branch-and-bound's, with identical final
objective values (both certified optimal).  The formatted race table
is recorded in ``benchmarks/results/solver_race.txt``.

Wall-clock ratios on shared CI hardware are noisy, so the race is
retried a bounded number of times before the timing assertion fails;
the objective-equality and optimality assertions are checked on every
attempt (they are deterministic -- a retry must never mask a
correctness regression).  ``REPRO_FULL=1`` adds the larger
max-groups-12 race the paper's timings correspond to.

``test_bench_learned_guidance`` is the ISSUE-10 gate: train the
:mod:`repro.learn` models on a store of solved fuzz scenarios, then
race guided vs unguided portfolios on cold scenarios adjacent to that
warm store under the deterministic virtual node clock.  The learned
portfolio must reach its first naive-beating incumbent at least 1.5x
faster (median TTFI) with a measurable tt5% win, while certifying
bit-identical optima.  Because the race runs on virtual node time,
the gate is deterministic -- no retries.
"""

import time

import pytest

from repro.experiments import solver_race

from conftest import full_run

#: acceptance threshold: portfolio tt5% <= 0.5x single-threaded bnb
RATIO = 0.5
ATTEMPTS = 3

#: ISSUE-10 acceptance: guided portfolio median TTFI speedup floor
LEARNED_TTFI_GATE = 1.5


def _race_once(**kwargs):
    rows = solver_race.race(**kwargs)
    by_solver = {str(r["solver"]).split("/")[0]: r for r in rows}
    bnb, portfolio = by_solver["bnb"], by_solver["portfolio"]
    # determinism: same certified optimum regardless of solver
    assert bnb["optimal"] and portfolio["optimal"]
    assert float(portfolio["objective_ms"]) == pytest.approx(
        float(bnb["objective_ms"]), rel=1e-9
    )
    assert portfolio["first_s"] is not None
    assert portfolio["tt5pct_s"] is not None
    # the portfolio's warm-started root means its first incumbent
    # can never trail the baseline's
    assert float(portfolio["first_s"]) <= float(bnb["first_s"]) + 1e-9
    return rows, float(portfolio["tt5pct_s"]), float(bnb["tt5pct_s"])


def test_bench_solver_race(save_report, save_json):
    rows = None
    for attempt in range(ATTEMPTS):
        rows, tt5_portfolio, tt5_bnb = _race_once(seed=attempt)
        if tt5_portfolio <= RATIO * tt5_bnb:
            break
    else:
        pytest.fail(
            f"portfolio tt5% {tt5_portfolio:.3f}s > "
            f"{RATIO} x bnb {tt5_bnb:.3f}s after {ATTEMPTS} attempts"
        )
    save_report("solver_race", solver_race.format_results(rows))
    save_json(
        "solver_race",
        {
            "ratio_threshold": RATIO,
            "tt5pct_portfolio_s": tt5_portfolio,
            "tt5pct_bnb_s": tt5_bnb,
            "rows": rows,
        },
    )


def test_bench_learned_guidance(save_report, save_json, tmp_path):
    from repro.core.solve_store import SolveStore
    from repro.experiments.common import format_table
    from repro.learn.corpus import train_into_store
    from repro.learn.evalrace import build_seed_store, guidance_race
    from repro.learn.guide import SearchGuide

    store = SolveStore(tmp_path / "learned_bench.jsonl")
    seeded = build_seed_store(store, range(120), limit=16)
    assert seeded["stored"] >= 8, "seed corpus unexpectedly small"

    start = time.perf_counter()
    train_stats = train_into_store(store)
    train_ms = (time.perf_counter() - start) * 1e3
    assert train_stats is not None

    start = time.perf_counter()
    guide = SearchGuide.from_store(store)
    load_ms = (time.perf_counter() - start) * 1e3
    assert guide is not None

    rows, summary = guidance_race(
        store, range(200, 400), limit=6, verify=True
    )
    assert summary["scenarios"] >= 4
    # both runs certified the same optimum on every scenario, and
    # every adopted schedule passed analysis.verify
    assert summary["all_optimal"]
    assert summary["objective_mismatches"] == 0
    assert summary["verified"]
    ttfi = summary["ttfi_speedup_median"]
    tt5 = summary["tt5_speedup_median"]
    assert ttfi is not None and ttfi >= LEARNED_TTFI_GATE, (
        f"median TTFI speedup {ttfi} below the "
        f"{LEARNED_TTFI_GATE}x gate"
    )
    assert tt5 is not None and tt5 > 1.0, (
        f"median tt5% speedup {tt5} is not a win"
    )

    table = format_table(
        rows,
        (
            "scenario",
            "optimal",
            "base_ttfi_s",
            "learned_ttfi_s",
            "ttfi_speedup",
            "base_tt5_s",
            "learned_tt5_s",
            "tt5_speedup",
            "base_nodes_to_opt",
            "learned_nodes_to_opt",
        ),
        title="Learned guidance race: guided vs unguided portfolio "
        "(virtual node clock, cold scenarios, warm store; "
        f"model train {train_ms:.1f} ms, load {load_ms:.1f} ms)",
    )
    save_report("learned_guidance", table)
    save_json(
        "learned_guidance",
        {
            "ttfi_gate": bool(ttfi >= LEARNED_TTFI_GATE),
            "ttfi_gate_threshold": LEARNED_TTFI_GATE,
            "ttfi_speedup_median": ttfi,
            "tt5_speedup_median": tt5,
            "model_train_ms": train_ms,
            "model_load_ms": load_ms,
            "train_stats": train_stats,
            "seeded": seeded,
            "summary": summary,
            "rows": rows,
        },
    )


@pytest.mark.slow
def test_bench_solver_race_full(save_report):
    if not full_run():
        pytest.skip("set REPRO_FULL=1 for the max-groups-12 race")
    rows, tt5_portfolio, tt5_bnb = _race_once(
        max_groups=12, workers=4
    )
    assert tt5_portfolio <= RATIO * tt5_bnb
    save_report("solver_race_full", solver_race.format_results(rows))
