"""Solver-race benchmark: the portfolio must converge 2x faster.

Tier-1 gate for the ISSUE-2 acceptance criterion: on the 3-network
scenario the portfolio's time-to-within-5%-of-optimal must be at most
half the single-threaded branch-and-bound's, with identical final
objective values (both certified optimal).  The formatted race table
is recorded in ``benchmarks/results/solver_race.txt``.

Wall-clock ratios on shared CI hardware are noisy, so the race is
retried a bounded number of times before the timing assertion fails;
the objective-equality and optimality assertions are checked on every
attempt (they are deterministic -- a retry must never mask a
correctness regression).  ``REPRO_FULL=1`` adds the larger
max-groups-12 race the paper's timings correspond to.
"""

import pytest

from repro.experiments import solver_race

from conftest import full_run

#: acceptance threshold: portfolio tt5% <= 0.5x single-threaded bnb
RATIO = 0.5
ATTEMPTS = 3


def _race_once(**kwargs):
    rows = solver_race.race(**kwargs)
    by_solver = {str(r["solver"]).split("/")[0]: r for r in rows}
    bnb, portfolio = by_solver["bnb"], by_solver["portfolio"]
    # determinism: same certified optimum regardless of solver
    assert bnb["optimal"] and portfolio["optimal"]
    assert float(portfolio["objective_ms"]) == pytest.approx(
        float(bnb["objective_ms"]), rel=1e-9
    )
    assert portfolio["first_s"] is not None
    assert portfolio["tt5pct_s"] is not None
    # the portfolio's warm-started root means its first incumbent
    # can never trail the baseline's
    assert float(portfolio["first_s"]) <= float(bnb["first_s"]) + 1e-9
    return rows, float(portfolio["tt5pct_s"]), float(bnb["tt5pct_s"])


def test_bench_solver_race(save_report, save_json):
    rows = None
    for attempt in range(ATTEMPTS):
        rows, tt5_portfolio, tt5_bnb = _race_once(seed=attempt)
        if tt5_portfolio <= RATIO * tt5_bnb:
            break
    else:
        pytest.fail(
            f"portfolio tt5% {tt5_portfolio:.3f}s > "
            f"{RATIO} x bnb {tt5_bnb:.3f}s after {ATTEMPTS} attempts"
        )
    save_report("solver_race", solver_race.format_results(rows))
    save_json(
        "solver_race",
        {
            "ratio_threshold": RATIO,
            "tt5pct_portfolio_s": tt5_portfolio,
            "tt5pct_bnb_s": tt5_bnb,
            "rows": rows,
        },
    )


@pytest.mark.slow
def test_bench_solver_race_full(save_report):
    if not full_run():
        pytest.skip("set REPRO_FULL=1 for the max-groups-12 race")
    rows, tt5_portfolio, tt5_bnb = _race_once(
        max_groups=12, workers=4
    )
    assert tt5_portfolio <= RATIO * tt5_bnb
    save_report("solver_race_full", solver_race.format_results(rows))
