"""Serving smoke benchmark: the online layer on a small request trace.

This is the tier-1 serving gate (wired into the default pytest run via
``testpaths``): a short changing-mix request trace served under the
four policies must show the cache-plus-anytime policy matching or
beating GPU-only serving on measured tail latency, with every repeated
mix answered from the schedule cache, and the MoCA-style runtime
throttle actually intervening.  A second pass replays the same trace
behind a rate-capped admission tier so the admit/shed columns land in
the CI JSON artifact.  ``REPRO_FULL=1`` runs a longer horizon.
"""

from repro.experiments import serving
from repro.serve.slo import AdmissionConfig, TierConfig

from conftest import full_run


def test_bench_serving(benchmark, save_report, save_json):
    if full_run():
        kwargs = {"horizon_s": 1.0}
    else:
        # 0.5 s is the shortest horizon at which GPU-only serving has
        # entered its backlog regime (shorter traces degenerate to
        # uncontended rounds where every policy measures alike)
        kwargs = {"horizon_s": 0.5, "max_groups": 6}
    rows = benchmark.pedantic(
        serving.run, kwargs=kwargs, rounds=1, iterations=1
    )
    save_report("serving", serving.format_results(rows))

    by_policy = {str(r["policy"]): r for r in rows}
    assert set(by_policy) == {"gpu_only", "naive", "haxconn", "moca"}
    hax, gpu = by_policy["haxconn"], by_policy["gpu_only"]
    # every policy serves the whole trace (no dropped work)
    assert len({(r["served"], r["shed"]) for r in rows}) == 1
    # contention-aware serving is never worse than GPU-only at the tail
    assert float(hax["p99_ms"]) <= float(gpu["p99_ms"]) * 1.01
    assert float(hax["goodput_rps"]) >= float(gpu["goodput_rps"]) * 0.99
    # each novel mix is solved exactly once; repeats come from the cache
    assert int(hax["solves"]) <= int(hax["rounds"]) / 2
    assert int(hax["cache_hits"]) > 0
    # the dynamic throttle baseline intervenes on the contended mix
    assert int(by_policy["moca"]["throttled"]) > 0

    # -- admission tier: the same trace behind a rate-capped tier -----
    tiers = AdmissionConfig(
        tiers=(TierConfig(priority=1, rate_hz=90.0, burst=4),)
    )
    admission_rows = serving.run(
        policies=("haxconn",), admission=tiers, **kwargs
    )
    adm = admission_rows[0]
    assert int(adm["shed"]) > 0, "rate tier never shed on this trace"
    # every arrival is accounted for: admitted requests all get served
    assert int(adm["admitted"]) == int(adm["served"])
    save_json(
        "serving",
        {
            "config": kwargs,
            "rows": rows,
            "admission_rows": admission_rows,
        },
    )
