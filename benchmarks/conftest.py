"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
writes the formatted rows to ``benchmarks/results/<artifact>.txt`` (and
the terminal, visible with ``-s``).  The heavyweight sweeps run reduced
default configurations; set ``REPRO_FULL=1`` to run the complete paper
protocol (all Table 8 pairs, all Fig. 5/6 models, 10 s Fig. 7 phases).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_run() -> bool:
    """Whether to run the complete (slow) paper protocol."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
