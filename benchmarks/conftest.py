"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
writes the formatted rows to ``benchmarks/results/<artifact>.txt`` (and
the terminal, visible with ``-s``).  The heavyweight sweeps run reduced
default configurations; set ``REPRO_FULL=1`` to run the complete paper
protocol (all Table 8 pairs, all Fig. 5/6 models, 10 s Fig. 7 phases).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_run() -> bool:
    """Whether to run the complete (slow) paper protocol."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Machine-readable twin of ``save_report``: dump a payload to
    ``benchmarks/results/<name>.json`` (stable key order; numpy
    scalars coerced through float)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: object) -> Path:
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=float)
            + "\n"
        )
        return path

    return _save


@pytest.fixture(scope="session", autouse=True)
def profile_store():
    """Share one on-disk profile store across every benchmark run.

    Points ``REPRO_PROFILE_STORE`` at ``benchmarks/results`` so
    :func:`repro.experiments.common.get_db` loads persisted profile
    databases instead of re-deriving them, and persists whatever was
    profiled at session end -- the paper's profile-once workflow,
    across processes.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    from repro.experiments import common

    previous = os.environ.get(common.PROFILE_STORE_ENV)
    os.environ[common.PROFILE_STORE_ENV] = str(RESULTS_DIR)
    try:
        yield
        common.persist_profile_stores()
    finally:
        if previous is None:
            os.environ.pop(common.PROFILE_STORE_ENV, None)
        else:
            os.environ[common.PROFILE_STORE_ENV] = previous
