"""Sharded-fleet benchmark: throughput scaling, solve-store reuse,
cross-backend determinism.

Tier-1 gates for the fleet acceptance criteria:

1. **throughput** -- at 4 fork shards the fleet's served-request
   wall-clock throughput is >= 3x the single-shard fleet's on the same
   tenant population.  On a small host this is an *algorithmic* win,
   not a parallelism win: one shard must co-schedule the joint
   four-stream mix (expensive solves), four shards solve four cheap
   single-stream mixes.
2. **solve store** -- a second fleet warm-started from the first run's
   persistent solve store reaches its first HaX-CoNN-family dispatch
   >= 2x sooner and performs zero solver runs (every mix toggles out
   of the store).
3. **determinism** -- at a fixed seed the per-shard ``FleetReport``\\ s
   are byte-identical across the serial, thread, and fork backends.

Wall-clock ratios on shared CI hardware are noisy, so the two timing
gates are retried a bounded number of times; the deterministic
assertions (equal served counts, byte-identity, zero warm solves) are
checked on every attempt -- a retry must never mask a correctness
regression.  Results go to ``benchmarks/results/fleet.txt`` and
``fleet.json``.
"""

import multiprocessing

from repro.core.solve_store import SolveStore
from repro.experiments import serving
from repro.serve.fleet import Fleet
from repro.soc.platform import get_platform

#: served-request throughput: 4 fork shards vs 1 shard
TPUT_RATIO = 3.0
#: time-to-first-HaX-CoNN-incumbent: warm store vs cold
TTF_RATIO = 2.0
ATTEMPTS = 3

HORIZON_S = 0.12
SHARDS = 4


def _parallel_backend() -> str:
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "thread"


def _run(shards: int, backend: str, store: SolveStore | None = None):
    fleet = Fleet(
        get_platform("xavier"),
        serving.fleet_tenants(),
        serving.make_fleet_policy_factory("xavier"),
        shards=shards,
        backend=backend,
        router="balanced",
        sync_rounds=4,
        store=store,
    )
    return fleet.run(horizon_s=HORIZON_S)


def _attempt(tmp_path, attempt: int):
    store = SolveStore(tmp_path / f"solves_{attempt}.jsonl")
    # an *empty* writable store does not seed the workers, so this run
    # stays comparable with the no-store backends below
    rep_serial = _run(SHARDS, "serial", store)
    rep_thread = _run(SHARDS, "thread")
    rep_parallel = _run(SHARDS, _parallel_backend())
    rep_single = _run(1, "serial")
    warm = SolveStore(store.path, readonly=True)
    rep_warm = _run(SHARDS, _parallel_backend(), warm)

    # -- deterministic gates: checked on every attempt ------------------
    # (3) fixed seed => per-shard reports byte-identical across backends
    assert rep_serial.describe_shards() == rep_thread.describe_shards()
    assert rep_serial.describe_shards() == rep_parallel.describe_shards()
    # every topology serves the full trace, nothing lost to sharding
    served = {
        r.served
        for r in (rep_serial, rep_thread, rep_parallel, rep_single)
    }
    assert len(served) == 1, f"served counts diverged: {served}"
    assert rep_serial.shed == rep_single.shed
    # (2, deterministic half) the warm fleet answers every mix from the
    # persisted store: zero solver runs, store hits on every toggle
    assert rep_warm.solves == 0, rep_warm.describe()
    assert rep_warm.store_hits > 0
    assert rep_warm.served == rep_single.served
    # the cold fleet persisted every solved mix for the next process
    assert len(store.schedules()) >= rep_parallel.solves

    # -- wall-clock gates: retried --------------------------------------
    tput_ratio = (
        rep_parallel.throughput_rps / rep_single.throughput_rps
    )
    cold_ttf = rep_parallel.time_to_first_hax_s()
    warm_ttf = rep_warm.time_to_first_hax_s()
    assert cold_ttf is not None and warm_ttf is not None
    ttf_ratio = cold_ttf / warm_ttf
    reports = {
        "serial": rep_serial,
        "thread": rep_thread,
        "parallel": rep_parallel,
        "single": rep_single,
        "warm": rep_warm,
    }
    return reports, tput_ratio, ttf_ratio


def test_bench_fleet(save_report, save_json, tmp_path):
    reports = None
    for attempt in range(ATTEMPTS):
        reports, tput_ratio, ttf_ratio = _attempt(tmp_path, attempt)
        if tput_ratio >= TPUT_RATIO and ttf_ratio >= TTF_RATIO:
            break
    else:
        assert tput_ratio >= TPUT_RATIO, (
            f"4-shard throughput only {tput_ratio:.2f}x the single "
            f"shard's after {ATTEMPTS} attempts"
        )
        assert ttf_ratio >= TTF_RATIO, (
            f"warm store cut time-to-first-incumbent only "
            f"{ttf_ratio:.2f}x after {ATTEMPTS} attempts"
        )

    rows = [
        {"run": name, **serving.fleet_row(report)}
        for name, report in reports.items()
    ]
    text = "\n\n".join(
        [
            serving.format_table(
                rows,
                ["run", *serving.FLEET_COLUMNS],
                title="Fleet scaling: shards, store warm-start, "
                "backend determinism",
            ),
            reports["parallel"].describe(),
        ]
    )
    save_report("fleet", text)
    save_json(
        "fleet",
        {
            "horizon_s": HORIZON_S,
            "shards": SHARDS,
            "throughput_ratio": tput_ratio,
            "throughput_threshold": TPUT_RATIO,
            "ttf_hax_ratio": ttf_ratio,
            "ttf_hax_threshold": TTF_RATIO,
            "rows": rows,
        },
    )
