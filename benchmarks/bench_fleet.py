"""Sharded-fleet benchmark: throughput scaling, solve-store reuse,
cross-backend determinism, gossip transport, bounded-lag pipelining.

Tier-1 gates for the fleet acceptance criteria:

1. **throughput** -- at 4 fork shards the fleet's served-request
   wall-clock throughput is >= 3x the single-shard fleet's on the same
   tenant population.  On a small host this is an *algorithmic* win,
   not a parallelism win: one shard must co-schedule the joint
   four-stream mix (expensive solves), four shards solve four cheap
   single-stream mixes.
2. **solve store** -- a second fleet warm-started from the first run's
   persistent solve store reaches its first HaX-CoNN-family dispatch
   >= 2x sooner and performs zero solver runs (every mix toggles out
   of the store).
3. **determinism** -- at a fixed seed the per-shard ``FleetReport``\\ s
   are byte-identical across the serial, thread, and fork backends.
4. **transport** -- the shared-memory gossip transport (``shm``) must
   deliver byte-identical per-shard reports to the pickled-queue
   path with actual ring traffic, and its per-round wall time must
   drop (lenient, retried: the payloads here are small, so the gate
   only requires shm not to *lose*; the byte-identity and
   ring-traffic assertions carry the correctness weight and run on
   every attempt).
5. **pipelining** -- a 16-shard fork fleet under diurnal traffic with
   staggered expensive solve epochs (`serving.pipeline_tenants`):
   bounded lag (``max_lag=8``) must cut the barrier-stall share of
   per-round wall time by >= 1.5x vs the lockstep barrier
   (``max_lag=0``).  The raw per-round wall ratio is additionally
   gated on hosts with >= 8 usable cores; on smaller hosts the
   kernel serializes all shard compute so total wall provably ties,
   and only the stall component can honestly separate the protocols
   (it is also the component the tentpole targets: fast shards keep
   serving instead of parking at the barrier).  Byte-identity of
   shard reports across serial/thread/fork AND across lockstep vs
   pipelined (the workload's mix signatures are pairwise distinct,
   so gossip is inert) is asserted on every attempt.

Wall-clock ratios on shared CI hardware are noisy, so the timing
gates are retried a bounded number of times; the deterministic
assertions (equal served counts, byte-identity, zero warm solves,
ring traffic) are checked on every attempt -- a retry must never mask
a correctness regression.  Results go to
``benchmarks/results/fleet.txt`` and ``fleet.json``.
"""

import multiprocessing
import os

import pytest

from repro.core import shm
from repro.core.solve_store import SolveStore
from repro.experiments import serving
from repro.serve.fleet import Fleet
from repro.soc.platform import get_platform

#: served-request throughput: 4 fork shards vs 1 shard
TPUT_RATIO = 3.0
#: time-to-first-HaX-CoNN-incumbent: warm store vs cold
TTF_RATIO = 2.0
#: queue-vs-shm per-round wall time: shm must not lose by more than
#: this factor (small-payload runs are noise-dominated; the identity
#: and ring-traffic asserts are the hard gates)
TRANSPORT_RATIO = 0.8
ATTEMPTS = 3

#: bounded-lag gate: lockstep/pipelined barrier-stall wall per round
PIPELINE_STALL_RATIO = 1.5
#: raw per-round wall ratio, only gated with enough real parallelism
PIPELINE_WALL_RATIO = 1.5
PIPELINE_MIN_CORES = 8
PIPELINE_SHARDS = 16
PIPELINE_MAX_LAG = 8
PIPELINE_ATTEMPTS = 2

HORIZON_S = 0.12
SHARDS = 4


def _parallel_backend() -> str:
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "thread"


def _run(
    shards: int,
    backend: str,
    store: SolveStore | None = None,
    transport: str = "auto",
):
    fleet = Fleet(
        get_platform("xavier"),
        serving.fleet_tenants(),
        serving.make_fleet_policy_factory("xavier"),
        shards=shards,
        backend=backend,
        router="balanced",
        sync_rounds=4,
        store=store,
        transport=transport,
    )
    return fleet.run(horizon_s=HORIZON_S)


def _attempt(tmp_path, attempt: int):
    store = SolveStore(tmp_path / f"solves_{attempt}.jsonl")
    # an *empty* writable store does not seed the workers, so this run
    # stays comparable with the no-store backends below
    rep_serial = _run(SHARDS, "serial", store)
    rep_thread = _run(SHARDS, "thread")
    rep_parallel = _run(SHARDS, _parallel_backend())
    rep_single = _run(1, "serial")
    warm = SolveStore(store.path, readonly=True)
    rep_warm = _run(SHARDS, _parallel_backend(), warm)

    # -- deterministic gates: checked on every attempt ------------------
    # (3) fixed seed => per-shard reports byte-identical across backends
    assert rep_serial.describe_shards() == rep_thread.describe_shards()
    assert rep_serial.describe_shards() == rep_parallel.describe_shards()
    # every topology serves the full trace, nothing lost to sharding
    served = {
        r.served
        for r in (rep_serial, rep_thread, rep_parallel, rep_single)
    }
    assert len(served) == 1, f"served counts diverged: {served}"
    assert rep_serial.shed == rep_single.shed
    # (2, deterministic half) the warm fleet answers every mix from the
    # persisted store: zero solver runs, store hits on every toggle
    assert rep_warm.solves == 0, rep_warm.describe()
    assert rep_warm.store_hits > 0
    assert rep_warm.served == rep_single.served
    # the cold fleet persisted every solved mix for the next process
    assert len(store.schedules()) >= rep_parallel.solves

    # -- wall-clock gates: retried --------------------------------------
    tput_ratio = (
        rep_parallel.throughput_rps / rep_single.throughput_rps
    )
    cold_ttf = rep_parallel.time_to_first_hax_s()
    warm_ttf = rep_warm.time_to_first_hax_s()
    assert cold_ttf is not None and warm_ttf is not None
    ttf_ratio = cold_ttf / warm_ttf
    reports = {
        "serial": rep_serial,
        "thread": rep_thread,
        "parallel": rep_parallel,
        "single": rep_single,
        "warm": rep_warm,
    }
    return reports, tput_ratio, ttf_ratio


def _measure_transport():
    """Gate 4: fork-shm vs fork-queue gossip.

    Byte-identity and ring traffic are asserted on every attempt; the
    per-round wall-time ratio is the retried lenient gate.
    """
    if _parallel_backend() != "fork":
        pytest.skip("shm transport requires the fork start method")
    if not shm.shared_memory_available():
        pytest.skip("no usable shared memory on this host")
    ratio = 0.0
    result = None
    for _attempt in range(ATTEMPTS):
        rep_queue = _run(SHARDS, "fork", transport="queue")
        rep_shm = _run(SHARDS, "fork", transport="shm")
        # identity + traffic: checked on every attempt
        assert rep_queue.transport == "queue"
        assert rep_shm.transport == "shm"
        assert (
            rep_shm.describe_shards() == rep_queue.describe_shards()
        ), "shm transport changed a shard report"
        assert rep_shm.transport_stats["ring"] > 0, (
            "no gossip actually rode the rings: "
            f"{rep_shm.transport_stats}"
        )
        queue_round_ms = rep_queue.wall_s * 1e3 / max(1, rep_queue.rounds)
        shm_round_ms = rep_shm.wall_s * 1e3 / max(1, rep_shm.rounds)
        ratio = queue_round_ms / shm_round_ms
        result = {
            "round_wall_ms_queue": queue_round_ms,
            "round_wall_ms_shm": shm_round_ms,
            "round_wall_ratio_queue_over_shm": ratio,
            "transport_threshold": TRANSPORT_RATIO,
            "shm_ring_payloads": rep_shm.transport_stats["ring"],
            "shm_inline_fallbacks": rep_shm.transport_stats["inline"],
        }
        if ratio >= TRANSPORT_RATIO:
            return result
    assert ratio >= TRANSPORT_RATIO, (
        f"shm transport round wall time regressed: queue/shm ratio "
        f"{ratio:.2f} < {TRANSPORT_RATIO} after {ATTEMPTS} attempts "
        f"({result})"
    )
    return result


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _measure_pipeline():
    """Gate 5: bounded-lag pipelining vs the lockstep barrier.

    Byte-identity (backends x lag settings) is asserted on every
    attempt; the stall-per-round ratio is the retried wall gate, and
    the raw round-wall ratio is gated only with real parallelism.
    """
    if _parallel_backend() != "fork":
        pytest.skip("the pipeline gate requires the fork start method")
    cores = _usable_cores()
    stall_ratio = wall_ratio = 0.0
    result = None
    for _ in range(PIPELINE_ATTEMPTS):
        lock = serving.run_pipeline_fleet(
            shards=PIPELINE_SHARDS, max_lag=0, backend="fork"
        )
        pipe = serving.run_pipeline_fleet(
            shards=PIPELINE_SHARDS,
            max_lag=PIPELINE_MAX_LAG,
            backend="fork",
        )
        pipe_serial = serving.run_pipeline_fleet(
            shards=PIPELINE_SHARDS,
            max_lag=PIPELINE_MAX_LAG,
            backend="serial",
        )
        pipe_thread = serving.run_pipeline_fleet(
            shards=PIPELINE_SHARDS,
            max_lag=PIPELINE_MAX_LAG,
            backend="thread",
        )
        # identity: checked on every attempt
        assert (
            pipe.describe_shards()
            == pipe_serial.describe_shards()
            == pipe_thread.describe_shards()
        ), "pipelined shard reports diverged across backends"
        # gossip is inert here, so the lag window must not change any
        # shard's report either -- lockstep and pipelined runs do the
        # same work and differ only in barrier stalls
        assert (
            lock.describe_shards() == pipe.describe_shards()
        ), "bounded lag changed a shard report on an inert workload"
        assert lock.max_lag == 0 and pipe.max_lag == PIPELINE_MAX_LAG
        assert pipe.admission_totals().get("shed", 0) > 0

        stall_ratio = lock.idle_per_round_ms() / max(
            pipe.idle_per_round_ms(), 1e-9
        )
        wall_ratio = lock.mean_round_wall_ms() / max(
            pipe.mean_round_wall_ms(), 1e-9
        )
        result = {
            "shards": PIPELINE_SHARDS,
            "max_lag": PIPELINE_MAX_LAG,
            "usable_cores": cores,
            "p50_ms": pipe.p50_ms,
            "p99_ms": pipe.p99_ms,
            "admitted": pipe.admission_totals().get("admitted", 0),
            "shed": pipe.admission_totals().get("shed", 0),
            "idle_ms_per_round_lockstep": lock.idle_per_round_ms(),
            "idle_ms_per_round_pipelined": pipe.idle_per_round_ms(),
            "round_wall_ms_lockstep": lock.mean_round_wall_ms(),
            "round_wall_ms_pipelined": pipe.mean_round_wall_ms(),
            "stall_ratio_lockstep_over_pipelined": stall_ratio,
            "stall_threshold": PIPELINE_STALL_RATIO,
            "wall_ratio_lockstep_over_pipelined": wall_ratio,
            "wall_threshold": PIPELINE_WALL_RATIO,
            "wall_ratio_gated": cores >= PIPELINE_MIN_CORES,
            "rows": [
                {"run": "lockstep", **serving.fleet_row(lock)},
                {"run": "pipelined", **serving.fleet_row(pipe)},
            ],
        }
        if stall_ratio >= PIPELINE_STALL_RATIO and (
            cores < PIPELINE_MIN_CORES
            or wall_ratio >= PIPELINE_WALL_RATIO
        ):
            return result
    assert stall_ratio >= PIPELINE_STALL_RATIO, (
        f"bounded lag cut barrier stall only {stall_ratio:.2f}x after "
        f"{PIPELINE_ATTEMPTS} attempts ({result})"
    )
    if cores >= PIPELINE_MIN_CORES:
        assert wall_ratio >= PIPELINE_WALL_RATIO, (
            f"pipelined round wall only {wall_ratio:.2f}x better after "
            f"{PIPELINE_ATTEMPTS} attempts ({result})"
        )
    return result


def test_bench_fleet(save_report, save_json, tmp_path):
    reports = None
    for attempt in range(ATTEMPTS):
        reports, tput_ratio, ttf_ratio = _attempt(tmp_path, attempt)
        if tput_ratio >= TPUT_RATIO and ttf_ratio >= TTF_RATIO:
            break
    else:
        assert tput_ratio >= TPUT_RATIO, (
            f"4-shard throughput only {tput_ratio:.2f}x the single "
            f"shard's after {ATTEMPTS} attempts"
        )
        assert ttf_ratio >= TTF_RATIO, (
            f"warm store cut time-to-first-incumbent only "
            f"{ttf_ratio:.2f}x after {ATTEMPTS} attempts"
        )

    rows = [
        {"run": name, **serving.fleet_row(report)}
        for name, report in reports.items()
    ]
    transport = _measure_transport()
    pipeline = _measure_pipeline()
    text = "\n\n".join(
        [
            serving.format_table(
                rows,
                ["run", *serving.FLEET_COLUMNS],
                title="Fleet scaling: shards, store warm-start, "
                "backend determinism",
            ),
            serving.format_table(
                pipeline["rows"],
                ["run", *serving.FLEET_COLUMNS],
                title="Bounded-lag pipelining: 16 fork shards, "
                "staggered solve epochs, diurnal admission",
            ),
            reports["parallel"].describe(),
        ]
    )
    save_report("fleet", text)
    save_json(
        "fleet",
        {
            "horizon_s": HORIZON_S,
            "shards": SHARDS,
            "throughput_ratio": tput_ratio,
            "throughput_threshold": TPUT_RATIO,
            "ttf_hax_ratio": ttf_ratio,
            "ttf_hax_threshold": TTF_RATIO,
            "rows": rows,
            "transport": transport,
            "pipeline": pipeline,
        },
    )
