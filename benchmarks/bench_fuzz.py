"""Fuzz-campaign benchmark: throughput, oracle overhead, digest stability.

Gates for the scenario-universe fuzzer:

1. **green campaign** -- the benchmark seed range produces zero
   discrepancies (a red seed is a correctness regression somewhere in
   the solver/evaluator/verifier stack, not a benchmark failure mode).
2. **digest stability** -- two runs of the same campaign produce the
   same sha256 digest, the property the CI fuzz job diffs.
3. **throughput** -- the oracle stack clears a floor of scenarios per
   second (warm profile DBs), so fuzzing stays cheap enough to run on
   every change.

The oracle-overhead figure (full eight-check stack vs scheduling
alone) is reported, not gated: it measures what the differential
checks cost on top of the solve they are auditing.  Results go to
``benchmarks/results/fuzz.txt`` and ``fuzz.json``.
"""

import time

from repro.core.haxconn import HaXCoNN
from repro.experiments.common import get_db
from repro.fuzz import generate_scenario, run_campaign, run_oracles
from repro.soc.platform import get_platform

from conftest import full_run

#: scenarios per second through the full oracle stack (warm DBs)
THROUGHPUT_FLOOR = 2.0
ATTEMPTS = 3

SEEDS = range(0, 200) if full_run() else range(0, 40)
OVERHEAD_SEEDS = (0, 2, 5, 7, 11, 13)


def _time_once(fn):
    t = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t


def _schedule_only(spec):
    scheduler = HaXCoNN(
        get_platform(spec.platform),
        db=get_db(spec.platform),
        max_groups=spec.max_groups,
        max_transitions=1,
    )
    return scheduler.schedule(spec.workload())


def test_bench_fuzz(save_report, save_json):
    # warm the per-platform profile DBs so the timed runs measure the
    # oracle stack, not one-off profiling
    warmup = run_campaign(range(0, 4))
    assert warmup.ok, [f.to_dict() for f in warmup.failures]

    for attempt in range(ATTEMPTS):
        report_a, elapsed_a = _time_once(lambda: run_campaign(SEEDS))
        report_b, _ = _time_once(lambda: run_campaign(SEEDS))

        # -- deterministic gates: checked on every attempt --------------
        assert report_a.ok, [f.to_dict() for f in report_a.failures]
        assert report_a.digest == report_b.digest
        stats = report_a.stats
        assert stats["transformer_scenarios"] > 0
        assert stats["multi_dsa_scenarios"] > 0

        # -- wall-clock gate: retried -----------------------------------
        throughput = len(SEEDS) / elapsed_a
        if throughput >= THROUGHPUT_FLOOR:
            break
    else:
        assert throughput >= THROUGHPUT_FLOOR, (
            f"oracle stack ran only {throughput:.2f} scenarios/s "
            f"after {ATTEMPTS} attempts"
        )

    overhead = []
    for seed in OVERHEAD_SEEDS:
        spec = generate_scenario(seed)
        _, solve_s = _time_once(lambda: _schedule_only(spec))
        outcome, oracle_s = _time_once(lambda: run_oracles(spec))
        assert outcome.ok
        overhead.append(
            {
                "seed": seed,
                "platform": spec.platform,
                "checks": len(outcome.checks),
                "solve_s": solve_s,
                "oracle_s": oracle_s,
                "overhead_x": oracle_s / solve_s,
            }
        )
    mean_overhead = sum(r["overhead_x"] for r in overhead) / len(overhead)

    lines = [
        "Fuzz campaign: throughput, oracle overhead, digest stability",
        "",
        f"seeds: {SEEDS.start}:{SEEDS.stop}  "
        f"oracle calls: {report_a.oracle_calls}",
        f"throughput: {throughput:.2f} scenarios/s "
        f"(floor {THROUGHPUT_FLOOR:.1f})",
        f"digest: {report_a.digest} (stable across 2 runs)",
        "coverage: "
        + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())),
        "",
        "oracle overhead (full stack / schedule alone):",
    ]
    for r in overhead:
        lines.append(
            f"  seed {r['seed']:>3} {r['platform']:<8} "
            f"{r['checks']} checks  "
            f"solve {r['solve_s'] * 1e3:7.1f} ms  "
            f"oracle {r['oracle_s'] * 1e3:7.1f} ms  "
            f"{r['overhead_x']:.2f}x"
        )
    lines.append(f"  mean overhead: {mean_overhead:.2f}x")
    save_report("fuzz", "\n".join(lines))
    save_json(
        "fuzz",
        {
            "seeds": [SEEDS.start, SEEDS.stop],
            "oracle_calls": report_a.oracle_calls,
            "scenarios_per_s": throughput,
            "throughput_floor": THROUGHPUT_FLOOR,
            "digest": report_a.digest,
            "digest_stable": report_a.digest == report_b.digest,
            "coverage": stats,
            "oracle_overhead": overhead,
            "mean_overhead_x": mean_overhead,
        },
    )
