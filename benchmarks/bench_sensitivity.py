"""Sensitivity of the headline result to substrate parameters."""

from repro.experiments import sensitivity

from conftest import full_run


def test_sensitivity(benchmark, save_report):
    sweeps = None
    if not full_run():
        sweeps = {
            "interference_coeff": (0.15, 0.45, 0.60),
            "emc_capacity_2clients": (0.70, 0.84),
        }
    rows = benchmark.pedantic(
        sensitivity.run, kwargs={"sweeps": sweeps}, rounds=1, iterations=1
    )
    save_report("sensitivity", sensitivity.format_results(rows))

    # HaX-CoNN never loses to the naive baselines at any swept point
    for row in rows:
        assert float(row["improvement_pct"]) >= -1.0, row
    # and the advantage is real somewhere in the plausible range
    assert max(float(r["improvement_pct"]) for r in rows) > 3.0
