"""Static-analysis performance gate: the flow pass must stay cheap.

``haxconn flow`` runs in CI on every push (and is meant to run in a
pre-commit loop), so the whole-program pass over ``src/repro`` --
parse, call graph, effect fixpoint, taint, protocol machine -- gets
the same treatment as the solver benches: a hard wall-time budget and
a machine-readable JSON artifact recording what the pass saw.

The budget (10 s) is ~6x the current cost on CI-class hardware; a
regression that trips it means the fixpoint or the resolver went
super-linear, not that the tree grew a module.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import flow

#: hard ceiling for one full pass over src/repro, in seconds
BUDGET_S = 10.0

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "tools" / "flow_baseline.json"


def test_bench_flow_analysis(save_report, save_json):
    baseline_keys = flow.load_baseline(BASELINE)

    start = time.perf_counter()
    pkg = flow.load_package(SRC_REPRO, package="repro")
    parsed_s = time.perf_counter() - start

    graph = flow.build_call_graph(pkg)
    graph_s = time.perf_counter() - start - parsed_s

    report = flow.analyze(
        SRC_REPRO, package="repro", baseline_keys=baseline_keys
    )
    total_s = time.perf_counter() - start

    assert total_s <= BUDGET_S, (
        f"flow pass took {total_s:.2f}s > {BUDGET_S}s budget"
    )
    # the gate CI applies: clean against the checked-in baseline
    assert report.ok, report.render()
    assert not report.stale_keys, report.render()

    payload = {
        "budget_s": BUDGET_S,
        "wall_s": round(total_s, 4),
        "parse_s": round(parsed_s, 4),
        "callgraph_s": round(graph_s, 4),
        "modules": len(pkg.modules),
        "functions": len(graph.functions),
        "call_edges": graph.edge_count(),
        "sinks": len(flow.collect_sinks(graph)),
        "findings_new": len(report.findings),
        "findings_baselined": len(report.baselined),
        "baseline_keys": len(baseline_keys),
        "stale_baseline_keys": len(report.stale_keys),
    }
    save_json("flow_analysis", payload)
    lines = [
        "flow analysis bench",
        f"  wall      {total_s:8.3f} s (budget {BUDGET_S:.0f} s)",
        f"  modules   {payload['modules']:8d}",
        f"  functions {payload['functions']:8d}",
        f"  edges     {payload['call_edges']:8d}",
        f"  sinks     {payload['sinks']:8d}",
        f"  findings  {payload['findings_baselined']:8d} baselined, "
        f"{payload['findings_new']} new",
    ]
    save_report("flow_analysis", "\n".join(lines))
