"""Table 6: the ten headline experiments (Scenarios 2-4)."""

from repro.experiments import table6_scenarios

from conftest import full_run


def test_table6_scenarios(benchmark, save_report):
    # reduced default: one experiment per platform/scenario family;
    # REPRO_FULL=1 runs all ten paper rows
    numbers = None if full_run() else [1, 4, 7, 10]
    rows = benchmark.pedantic(
        table6_scenarios.run,
        kwargs={"numbers": numbers},
        rounds=1,
        iterations=1,
    )
    save_report(
        "table6_scenarios", table6_scenarios.format_results(rows)
    )

    for row in rows:
        # HaX-CoNN never loses to the best baseline (paper: 0-26%
        # improvement; small negative noise tolerated)
        assert float(row["improvement_pct"]) >= -3.0, row
        naive_best = min(
            float(row["gpu_only_lat_ms"]), float(row["naive_lat_ms"])
        )
        assert float(row["haxconn_lat_ms"]) <= naive_best * 1.01
    # and it wins clearly somewhere
    assert max(float(r["improvement_pct"]) for r in rows) > 2.0
