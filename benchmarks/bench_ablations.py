"""Design-choice ablations (DESIGN.md section 5)."""

from repro.experiments import ablations


def test_contention_model_ablation(benchmark, save_report):
    rows = benchmark.pedantic(
        ablations.contention_model_ablation, rounds=1, iterations=1
    )
    save_report(
        "ablation_contention_model", ablations.format_results(rows)
    )
    by_variant = {str(r["variant"]): r for r in rows}
    # the full cost model predicts the simulator best
    assert float(by_variant["pccs"]["misprediction_pct"]) < 15.0
    # removing contention awareness degrades prediction fidelity
    assert float(by_variant["no-contention"]["misprediction_pct"]) > float(
        by_variant["pccs"]["misprediction_pct"]
    )


def test_pccs_accuracy_ablation(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.pccs_accuracy_ablation, rounds=1, iterations=1
    )
    lines = [f"{k}: {v:.4f}" for k, v in result.items()]
    save_report("ablation_pccs_accuracy", "\n".join(lines))
    # decoupled profiling costs O(grid^2) probes, not O(layers^2)
    # pairwise co-runs, and stays within a few percent of the oracle
    assert result["mean_rel_err"] < 0.05


def test_solver_anytime_ablation(benchmark, save_report):
    rows = benchmark.pedantic(
        ablations.solver_anytime_ablation, rounds=1, iterations=1
    )
    save_report("ablation_solver_anytime", ablations.format_results(rows))
    by_variant = {str(r["variant"]): r for r in rows}
    assert (
        by_variant["bound-ordered"]["nodes"]
        <= by_variant["unordered"]["nodes"]
    )
