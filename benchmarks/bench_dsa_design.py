"""DSA design-space sweep."""

from repro.experiments import dsa_design

from conftest import full_run


def test_dsa_design_space(benchmark, save_report):
    scales = dsa_design.DEFAULT_SCALES if full_run() else (0.5, 1.0, 2.0)
    rows = benchmark.pedantic(
        dsa_design.run, kwargs={"scales": scales}, rounds=1, iterations=1
    )
    save_report("dsa_design", dsa_design.format_results(rows))

    by_mode: dict[str, dict[float, float]] = {}
    for r in rows:
        by_mode.setdefault(str(r["mode"]), {})[
            float(r["dsa_scale"])
        ] = float(r["gain_vs_serial_pct"])
    # the never-lose guarantee holds at every design point
    for gains in by_mode.values():
        assert all(g >= -1.0 for g in gains.values())
    # the study's finding: scaling compute+bandwidth together pays at
    # the top of the range at least as much as compute alone (raw
    # FLOPs without memory bandwidth are throttled by EMC pressure)
    top = max(by_mode["compute-only"])
    assert (
        by_mode["compute+bw"][top] >= by_mode["compute-only"][top] - 0.5
    )
    assert max(by_mode["compute+bw"].values()) > 0.5
