"""Table 8: exhaustive DNN-pair evaluation on AGX Orin."""

import itertools

from repro.experiments import table8_exhaustive

from conftest import full_run


def _pairs():
    models = table8_exhaustive.DEFAULT_MODELS
    if full_run():
        return list(itertools.combinations_with_replacement(models, 2))
    # reduced default: the GoogleNet row (paper: all improve) and the
    # VGG19 row (paper: mostly GPU-only), plus the diagonal extremes
    keep = []
    for m1, m2 in itertools.combinations_with_replacement(models, 2):
        if "googlenet" in (m1, m2) or "vgg19" in (m1, m2):
            keep.append((m1, m2))
    return keep


def run_pairs():
    return [table8_exhaustive.run_pair(m1, m2) for m1, m2 in _pairs()]


def test_table8_exhaustive(benchmark, save_report):
    rows = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    save_report(
        "table8_exhaustive", table8_exhaustive.format_results(rows)
    )

    # HaX-CoNN never loses to the best baseline (ties allowed)
    for row in rows:
        assert float(row["speedup_value"]) >= 0.97, row
    # paper: every GoogleNet pair improves over the naive baselines
    googlenet_rows = [
        r
        for r in rows
        if "googlenet" in (r["dnn1"], r["dnn2"]) and r["speedup"] != "x"
    ]
    assert googlenet_rows
    improving = [
        r for r in googlenet_rows if float(r["speedup_vs_naive"]) > 1.01
    ]
    assert len(improving) >= len(googlenet_rows) * 0.6
    # paper: VGG19 pairs mostly stay GPU-only ('x')
    vgg_rows = [r for r in rows if r["dnn1"] == "vgg19" or r["dnn2"] == "vgg19"]
    fallbacks = [r for r in vgg_rows if r["speedup"] == "x"]
    assert fallbacks or all(
        float(r["speedup_vs_naive"]) < 1.15 for r in vgg_rows
    )
