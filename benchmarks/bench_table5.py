"""Table 5: standalone runtimes, paper vs calibrated model."""

from repro.experiments import table5_standalone


def test_table5_standalone(benchmark, save_report):
    rows = benchmark(table5_standalone.run)
    save_report(
        "table5_standalone", table5_standalone.format_results(rows)
    )

    assert len(rows) == 40
    ratios = [float(r["ratio"]) for r in rows if r["ratio"] is not None]
    assert all(0.4 < r < 2.5 for r in ratios)
    # DenseNet cannot be built for the Xavier DLA (the paper's "-")
    dash = [
        r
        for r in rows
        if r["platform"] == "xavier"
        and r["accelerator"] == "dla"
        and r["model"] == "densenet121"
    ]
    assert dash[0]["modeled_ms"] is None
