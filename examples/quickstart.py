#!/usr/bin/env python3
"""Quickstart: schedule two concurrent DNNs on a Jetson Orin.

Builds the workload of the paper's experiment 6 (VGG-19 and ResNet-152
processing the same camera frame in parallel), lets HaX-CoNN find the
optimal layer-to-accelerator mapping, and compares the measured latency
against the GPU-only and naive GPU&DLA baselines.

Run:  python examples/quickstart.py [platform]
"""

import sys

from repro.core import HaXCoNN, Workload, gpu_only, naive_concurrent
from repro.runtime import run_schedule
from repro.soc import get_platform


def main() -> None:
    platform_name = sys.argv[1] if len(sys.argv) > 1 else "orin"
    platform = get_platform(platform_name)
    print(f"Platform: {platform.name} "
          f"({platform.dram_bandwidth / 1e9:.1f} GB/s shared DRAM, "
          f"accelerators: {', '.join(platform.accelerator_names)})")

    # Two perception DNNs process the same frame concurrently and
    # synchronize afterwards (paper Scenario 2).
    workload = Workload.concurrent("vgg19", "resnet152", objective="latency")

    # --- HaX-CoNN: profile, solve, schedule -------------------------
    scheduler = HaXCoNN(platform)
    result = scheduler.schedule(workload)
    print("\nHaX-CoNN schedule (layer groups -> accelerators):")
    print(result.schedule.describe())
    solver = result.solver
    if solver is not None:
        print(f"solver: {solver.nodes_explored} nodes, "
              f"{solver.wall_time_s:.2f}s, optimal={solver.optimal}")

    # --- execute everything on the simulated SoC --------------------
    rows = [("HaX-CoNN", run_schedule(result, platform))]
    for label, baseline in (
        ("GPU only", gpu_only(workload, platform, db=scheduler.db)),
        ("naive GPU & DSA", naive_concurrent(workload, platform, db=scheduler.db)),
    ):
        rows.append((label, run_schedule(baseline, platform)))

    print("\nMeasured on the simulated SoC:")
    best_baseline = min(ex.latency_ms for label, ex in rows[1:])
    for label, execution in rows:
        print(f"  {label:16s} {execution.latency_ms:7.2f} ms "
              f"({execution.fps(1):6.1f} FPS)")
    hax_ms = rows[0][1].latency_ms
    print(f"\nImprovement over the best baseline: "
          f"{(best_baseline - hax_ms) / best_baseline * 100:.1f}%")


if __name__ == "__main__":
    main()
