#!/usr/bin/env python3
"""A tour of the decoupled profiling pipeline (Sections 3.1-3.3).

Shows everything HaX-CoNN learns about a DNN *before* scheduling:
layer grouping, per-group times on each DSA, transition costs,
requested memory throughput (including the black-box DSA estimation),
and the PCCS contention surface.

Run:  python examples/profiling_tour.py [model] [platform]
"""

import sys

from repro.profiling import ProfileDB, estimate_blackbox_bw
from repro.soc import get_platform


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "googlenet"
    platform_name = sys.argv[2] if len(sys.argv) > 2 else "xavier"
    platform = get_platform(platform_name)
    db = ProfileDB(platform)

    profile = db.profile(model, max_groups=10)
    gpu, dsa = platform.gpu, platform.dsa
    print(f"{model} on {platform.name}: {len(profile)} layer groups\n")
    header = (
        f"{'group':>9s} {'gpu ms':>8s} {'dsa ms':>8s} {'ratio':>6s} "
        f"{'G->D us':>8s} {'D->G us':>8s} {'GPU bw':>8s} {'bb-est':>8s}"
    )
    print(header)
    print("-" * len(header))
    for g in profile:
        gpu_ms = g.time_s[gpu.name] * 1e3
        dsa_t = g.time_s.get(dsa.name)
        dsa_ms = f"{dsa_t * 1e3:8.3f}" if dsa_t else "       -"
        ratio = f"{dsa_t / g.time_s[gpu.name]:6.2f}" if dsa_t else "     -"
        g2d = sum(g.transition_s[(gpu.name, dsa.name)]) * 1e6
        d2g = sum(g.transition_s[(dsa.name, gpu.name)]) * 1e6
        bw = g.req_bw[gpu.name] / 1e9
        if dsa_t:
            # the paper's four-step estimation for counter-less DSAs
            est = estimate_blackbox_bw(g.group, gpu, dsa, platform) / 1e9
            bb = f"{est:7.1f}G"
        else:
            bb = "       -"
        print(
            f"{g.label:>9s} {gpu_ms:8.3f} {dsa_ms} {ratio} "
            f"{g2d:8.1f} {d2g:8.1f} {bw:7.1f}G {bb}"
        )

    print("\nPCCS slowdown surface (own demand x external demand, "
          "fractions of DRAM bandwidth):")
    pccs = db.pccs
    bw_total = platform.dram_bandwidth
    fractions = (0.2, 0.4, 0.6, 0.8)
    print("        " + "".join(f"ext={f:<6.1f}" for f in fractions))
    for own in fractions:
        row = "".join(
            f"{pccs.slowdown(own * bw_total, [ext * bw_total]):<10.3f}"
            for ext in fractions
        )
        print(f"own={own:<4.1f}{row}")


if __name__ == "__main__":
    main()
