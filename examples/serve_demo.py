#!/usr/bin/env python3
"""Multi-tenant serving demo: cache toggles plus anytime solving.

Three tenants share one simulated Xavier: a camera-classification
tenant runs throughout while a detection tenant hands over to a
segmentation tenant halfway -- so the active mix *changes* mid-run.
The cache-plus-anytime policy starts each novel mix on the best naive
schedule, swaps in better solver incumbents at the paper's update
points, and serves every repeat of a converged mix straight from the
schedule cache.  A GPU-only policy serves the identical request stream
for comparison.  All latencies are measured on the discrete-event
simulator.

Run:  python examples/serve_demo.py [platform]
"""

import sys

from repro.core import HaXCoNN
from repro.serve import (
    CachedAnytimePolicy,
    PoissonArrivals,
    Server,
    Tenant,
    TraceArrivals,
    gpu_only_policy,
)
from repro.serve.requests import PeriodicArrivals
from repro.soc import get_platform

HORIZON_S = 0.5


def tenants() -> list[Tenant]:
    half = HORIZON_S / 2
    window = lambda rate, lo, hi, seed: TraceArrivals(
        PeriodicArrivals(rate, seed=seed).times_within(hi - lo, start=lo)
    )
    return [
        Tenant.of(
            "cam",
            "googlenet",
            arrivals=PoissonArrivals(120.0, seed=7),
            slo_s=0.030,
        ),
        Tenant.of(
            "det",
            "vgg19",
            arrivals=window(70.0, 0.0, half, 8),
            slo_s=0.040,
        ),
        Tenant.of(
            "seg",
            "resnet152",
            arrivals=window(70.0, half, HORIZON_S, 9),
            slo_s=0.040,
        ),
    ]


def main() -> None:
    platform = get_platform(sys.argv[1] if len(sys.argv) > 1 else "xavier")
    scheduler = HaXCoNN(
        platform, max_groups=8, max_transitions=1
    )

    print(f"serving on {platform.name}: cam throughout, det -> seg "
          f"handover at {HORIZON_S / 2 * 1e3:.0f} ms\n")
    policy = CachedAnytimePolicy(scheduler)
    report = Server(
        platform, tenants(), policy, max_batch=2
    ).run(horizon_s=HORIZON_S)
    print("cache + anytime serving:")
    print(report.describe())

    swaps = [
        (r.index, r.scheduler)
        for k, r in enumerate(report.rounds)
        if k == 0 or report.rounds[k - 1].scheduler != r.scheduler
    ]
    print("\nschedule activations (round, scheduler):")
    for index, name in swaps:
        print(f"  round {index:3d}: {name}")

    baseline = gpu_only_policy(
        platform, db=scheduler.db, max_groups=8
    )
    gpu_report = Server(
        platform, tenants(), baseline, max_batch=2
    ).run(horizon_s=HORIZON_S)
    print(f"\nGPU-only serving of the same requests: "
          f"p99 {gpu_report.p99_ms:.2f} ms vs "
          f"{report.p99_ms:.2f} ms cache+anytime")


if __name__ == "__main__":
    main()
