#!/usr/bin/env python3
"""D-HaX-CoNN: a drone switching between mission modes (Section 3.5).

The drone alternates between *discovery* (wide-area detection +
classification) and *tracking* (tracker + segmentation) modes; each
switch changes the control-flow graph, so no static schedule fits.
D-HaX-CoNN starts each phase with the best naive schedule, runs the
anytime solver on a CPU core, and swaps in better schedules at the
paper's update instants until it reaches the optimum (Fig. 7).

Run:  python examples/dynamic_drone.py
"""

from repro.core import DHaXCoNN, HaXCoNN, Workload
from repro.soc import get_platform

MODES = {
    "discovery": Workload.concurrent(
        "resnet101", "googlenet", objective="latency"
    ),
    "tracking": Workload.concurrent(
        "resnet18", "fcn_resnet18", objective="latency"
    ),
}


def main() -> None:
    platform = get_platform("orin")
    dynamic = DHaXCoNN(HaXCoNN(platform))

    for mode, workload in MODES.items():
        print(f"\n=== mode switch -> {mode} "
              f"({' + '.join(workload.names)}) ===")
        phase = dynamic.run_phase(workload, duration_s=5.0)
        print(f"{'t (s)':>8s}  {'active schedule latency':>24s}")
        for update in phase.updates:
            print(f"{update.time_s:8.3f}  {update.latency_ms:20.2f} ms   "
                  f"({update.schedule.meta.get('scheduler')})")
        print(f"oracle (certified optimum): "
              f"{phase.oracle_latency_ms:.2f} ms")
        if phase.converged:
            print(f"converged at t={phase.convergence_time_s:.3f}s")
        else:
            print("did not reach the oracle within the phase")
        frames = len(phase.frames)
        print(f"processed {frames} frames in {phase.duration_s:.0f}s "
              f"({frames / phase.duration_s:.1f} FPS average)")


if __name__ == "__main__":
    main()
