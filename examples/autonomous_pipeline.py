#!/usr/bin/env python3
"""Autonomous-driving perception loop (paper Scenarios 3 and 4).

A camera stream feeds a detection network whose outputs flow into a
tracking network (a pipelined chain); a semantic-segmentation network
runs in parallel on the same frames.  The loop's motion planner waits
for *all* results, so the combined latency is the safety-relevant
metric the paper's Scenario 4 minimizes.

Run:  python examples/autonomous_pipeline.py
"""

from repro.core import HaXCoNN, Workload, WorkloadDNN, gpu_only, h2h, naive_concurrent
from repro.runtime import run_schedule
from repro.soc import get_platform


def main() -> None:
    platform = get_platform("xavier")

    # detection -> tracking chain, plus segmentation in parallel
    workload = Workload(
        dnns=(
            WorkloadDNN.of("googlenet", "resnet152"),  # detect -> track
            WorkloadDNN.of("fcn_resnet18"),            # segmentation
        ),
        objective="latency",
    )
    print("Workload:")
    for dnn in workload:
        print(f"  stream {dnn.name}")

    scheduler = HaXCoNN(platform)
    schedulers = {
        "GPU only": lambda w: gpu_only(w, platform, db=scheduler.db),
        "naive GPU & DLA": lambda w: naive_concurrent(
            w, platform, db=scheduler.db
        ),
        "H2H (contention-blind)": lambda w: h2h(
            w, platform, db=scheduler.db
        ),
        "HaX-CoNN": scheduler.schedule,
    }

    print(f"\n{'scheduler':24s} {'predicted':>10s} {'measured':>10s}")
    results = {}
    for label, schedule_fn in schedulers.items():
        result = schedule_fn(workload)
        execution = run_schedule(result, platform)
        results[label] = execution.latency_ms
        print(
            f"{label:24s} {result.predicted.makespan * 1e3:8.2f}ms "
            f"{execution.latency_ms:8.2f}ms"
        )

    print("\nNote how the contention-blind scheduler's prediction "
          "undershoots its own measurement, while HaX-CoNN's matches -- "
          "that gap is the paper's central argument.")

    hax = results["HaX-CoNN"]
    best = min(v for k, v in results.items() if k != "HaX-CoNN")
    print(f"\nHaX-CoNN vs best alternative: "
          f"{(best - hax) / best * 100:+.1f}% latency")


if __name__ == "__main__":
    main()
