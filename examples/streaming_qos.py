#!/usr/bin/env python3
"""Streaming QoS: camera-rate execution with deadlines.

A perception pair (GoogleNet + ResNet-101) processes a 30 FPS camera
stream with a 15 ms per-frame deadline.  The script compares the
GPU-only serial baseline against HaX-CoNN's co-schedule under
identical arrivals (with sensor jitter), reports latency percentiles
and deadline misses, renders the first frames as an ASCII Gantt chart,
and exports a Chrome trace for chrome://tracing.

Run:  python examples/streaming_qos.py
"""

from repro.core import HaXCoNN, Workload, gpu_only
from repro.runtime import render_timeline, run_schedule
from repro.runtime.stream import run_stream
from repro.runtime.trace import export_chrome_trace
from repro.soc import get_platform

CAMERA_FPS = 30.0
DEADLINE_S = 0.015
FRAMES = 40


def main() -> None:
    platform = get_platform("xavier")
    workload = Workload.concurrent(
        "googlenet", "resnet101", objective="latency"
    )
    scheduler = HaXCoNN(platform)
    candidates = {
        "GPU only (serial)": gpu_only(
            workload, platform, db=scheduler.db
        ),
        "HaX-CoNN": scheduler.schedule(workload),
    }

    print(f"camera: {CAMERA_FPS:.0f} FPS, deadline {DEADLINE_S * 1e3:.0f} ms, "
          f"{FRAMES} frames, 10% arrival jitter\n")
    header = (f"{'scheduler':20s} {'p50':>8s} {'p99':>8s} "
              f"{'misses':>8s} {'fps':>7s}")
    print(header)
    print("-" * len(header))
    stats_by_name = {}
    for name, result in candidates.items():
        stats = run_stream(
            result,
            platform,
            fps=CAMERA_FPS,
            frames=FRAMES,
            deadline_s=DEADLINE_S,
            jitter_frac=0.1,
        )
        stats_by_name[name] = stats
        print(f"{name:20s} {stats.p50_ms:6.2f}ms {stats.p99_ms:6.2f}ms "
              f"{stats.deadline_miss_rate * 100:7.1f}% "
              f"{stats.sustained_fps:7.1f}")

    print("\nOne round of the HaX-CoNN schedule (ASCII Gantt):")
    execution = run_schedule(candidates["HaX-CoNN"], platform)
    print(render_timeline(execution.timeline, legend=workload.names))

    path = export_chrome_trace(
        stats_by_name["HaX-CoNN"].timeline,
        "haxconn_stream_trace.json",
        stream_names=list(workload.names),
    )
    print(f"\nChrome trace written to {path} "
          "(load in chrome://tracing or Perfetto)")


if __name__ == "__main__":
    main()
